//! The flight recorder: a bounded, segment-rotated, crash-surviving
//! event journal for post-mortem diagnostics.
//!
//! Live telemetry (metrics, spans, exposition) evaporates with the
//! process; the interesting failures — a crash mid-compaction, a delta
//! that inexplicably fell to a full rebuild — are diagnosed *after the
//! fact* from the data dir. The recorder closes that gap: structured
//! events ([`FlightEvent`]) and finished tracing spans are buffered in a
//! small in-memory ring and flushed to `flight-<seq>.fdr` segment files,
//! which `pscc-doctor` reads back read-only to reconstruct the timeline.
//!
//! ## On-disk format
//!
//! Each segment reuses the WAL framing idiom of `crates/store`: an 8-byte
//! magic ([`FLIGHT_MAGIC`]) followed by records
//!
//! ```text
//! len: u32 | seq: u64 | payload (len bytes) | crc: u64
//! ```
//!
//! little-endian, `crc` an FNV-1a 64 checksum over `len ∥ seq ∥ payload`.
//! The payload is one UTF-8 line of tab-separated `key=value` fields
//! (values escaped with [`escape_field_value`]), always starting
//! `ts=<ns>\tevent=<kind>`, so a journal is greppable *and* machine
//! parseable with [`parse_line`]. Sequence numbers increase by exactly 1
//! across the whole journal; a segment file is named after its first
//! record's seq (`flight-<seq:020>.fdr`), rotation starts a fresh segment
//! past [`SEGMENT_ROTATE_BYTES`] and deletes the oldest past
//! [`MAX_SEGMENTS`], and a torn tail (the crash the recorder exists for)
//! is tolerated by every scan: a short, implausible, or checksum-failing
//! final frame ends the scan, and writers never append to an old segment,
//! so a torn tail never corrupts later records.
//!
//! ## Process-global installation
//!
//! One recorder per process: [`install`] opens it, registers a
//! `std::panic` hook that best-effort dumps the ring (so the last seconds
//! before a crash are on disk even when nothing calls [`flush_active`]),
//! and makes [`record`] a cheap in-memory push from anywhere. The
//! engine's catalog records its delta/rebuild/compaction/recovery events
//! through this slot and schedules flushes on its background worker;
//! durability of the journal is best-effort by design — it is a
//! diagnostic artifact, not a source of truth, so nothing fsyncs on the
//! hot path.

use crate::metrics;
use crate::trace;
use std::collections::VecDeque;
use std::fs::{self, File};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, Once, OnceLock};

/// First 8 bytes of every segment file.
pub const FLIGHT_MAGIC: [u8; 8] = *b"PSCCFDR1";

/// `len` + `seq` + `crc` bytes around each payload.
const FRAME_OVERHEAD: u64 = 4 + 8 + 8;

/// A segment reaching this size is closed; the next flush starts a new one.
pub const SEGMENT_ROTATE_BYTES: u64 = 256 * 1024;

/// Maximum number of segment files kept on disk (oldest deleted first),
/// bounding the journal at roughly `MAX_SEGMENTS × SEGMENT_ROTATE_BYTES`.
pub const MAX_SEGMENTS: usize = 4;

/// Maximum events buffered in memory between flushes; the oldest are
/// dropped (and counted) past this.
pub const RING_CAPACITY: usize = 1024;

/// Hard cap on one record's payload; longer events are truncated.
const MAX_PAYLOAD_BYTES: usize = 64 * 1024;

const SEGMENT_PREFIX: &str = "flight-";
const SEGMENT_SUFFIX: &str = ".fdr";

/// Cached handle for `pscc_flight_events_recorded_total`.
fn events_counter() -> &'static Arc<metrics::Counter> {
    static C: OnceLock<Arc<metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| metrics::counter("pscc_flight_events_recorded_total"))
}

/// Cached handle for `pscc_flight_events_dropped_total` (ring overflow
/// between flushes).
fn dropped_counter() -> &'static Arc<metrics::Counter> {
    static C: OnceLock<Arc<metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| metrics::counter("pscc_flight_events_dropped_total"))
}

/// Cached handle for `pscc_flight_flushes_total`.
fn flushes_counter() -> &'static Arc<metrics::Counter> {
    static C: OnceLock<Arc<metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| metrics::counter("pscc_flight_flushes_total"))
}

/// Cached handle for `pscc_flight_bytes_written_total`.
fn bytes_counter() -> &'static Arc<metrics::Counter> {
    static C: OnceLock<Arc<metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| metrics::counter("pscc_flight_bytes_written_total"))
}

/// FNV-1a 64 over `bytes` — the frame checksum. (The store's `Checksum64`
/// lives above this crate in the dependency order, so the recorder
/// carries its own tiny equivalent; the two formats are independent.)
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Escapes one field value for the tab-separated payload line: `\` →
/// `\\`, tab → `\t`, newline → `\n`, carriage return → `\r` (two
/// characters each), so the line survives grep, terminals, and
/// [`parse_line`].
pub fn escape_field_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_field_value`]; unknown escapes pass through.
pub fn unescape_field_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Splits one journal payload line into its `key=value` fields, with
/// values unescaped. Fields without `=` are skipped.
pub fn parse_line(line: &str) -> Vec<(String, String)> {
    line.split('\t')
        .filter_map(|field| field.split_once('='))
        .map(|(k, v)| (k.to_string(), unescape_field_value(v)))
        .collect()
}

/// One structured event headed for the journal. Build with
/// [`FlightEvent::new`], attach fields, hand to [`record`] (or a
/// [`Recorder`] directly).
#[derive(Clone, Debug)]
pub struct FlightEvent {
    kind: &'static str,
    fields: Vec<(&'static str, String)>,
}

impl FlightEvent {
    /// Starts an event of the given kind (`"delta"`, `"compaction"`, …).
    pub fn new(kind: &'static str) -> FlightEvent {
        FlightEvent { kind, fields: Vec::new() }
    }

    /// Appends one `key=value` field (value escaped at render time).
    pub fn field(mut self, key: &'static str, value: impl std::fmt::Display) -> FlightEvent {
        self.fields.push((key, value.to_string()));
        self
    }

    /// The payload line: `ts=<ns>\tevent=<kind>\tk=v…`.
    fn render(&self, ts_ns: u64) -> String {
        let mut line = format!("ts={ts_ns}\tevent={}", self.kind);
        for (k, v) in &self.fields {
            line.push('\t');
            line.push_str(k);
            line.push('=');
            line.push_str(&escape_field_value(v));
        }
        line
    }
}

/// The open segment a [`Recorder`] is appending to.
struct Segment {
    file: File,
    bytes: u64,
}

/// Everything behind the recorder's single mutex: the in-memory ring,
/// span/histogram high-water marks, and the open segment.
struct Journal {
    ring: VecDeque<String>,
    /// Ring evictions since the last flush (re-counted into the journal
    /// as a `dropped` field so the loss is visible post-mortem).
    dropped_since_flush: u64,
    /// Highest span id already flushed; the span sink is read
    /// non-destructively so other readers (tests, dumps) are unaffected.
    last_span_id: u64,
    /// Per-histogram count at the last flush, to emit `hist` events only
    /// when a histogram actually moved.
    hist_counts: std::collections::HashMap<String, u64>,
    next_seq: u64,
    segment: Option<Segment>,
}

struct Inner {
    dir: PathBuf,
    journal: Mutex<Journal>,
}

/// A flight-recorder instance writing segments into one directory.
///
/// Cloning shares the instance. Most code uses the process-global slot
/// ([`install`] / [`record`]) instead of holding a `Recorder` directly.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Recorder {
    /// Opens (or creates) the journal directory and positions the writer
    /// after the last valid record on disk. Existing segments are never
    /// appended to — recovery after a torn tail is a fresh segment — so
    /// opening is a read-only scan plus `create_dir_all`.
    pub fn open(dir: &Path) -> io::Result<Recorder> {
        fs::create_dir_all(dir)?;
        let scan = scan_dir(dir)?;
        let next_seq = scan
            .records
            .last()
            .map(|r| r.seq + 1)
            .or_else(|| scan.segments.last().map(|s| s.first_name_seq + 1))
            .unwrap_or(1);
        let journal = Journal {
            ring: VecDeque::with_capacity(RING_CAPACITY.min(64)),
            dropped_since_flush: 0,
            last_span_id: 0,
            hist_counts: std::collections::HashMap::new(),
            next_seq,
            segment: None,
        };
        Ok(Recorder {
            inner: Arc::new(Inner { dir: dir.to_path_buf(), journal: Mutex::new(journal) }),
        })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Buffers one event in the ring (cheap; no I/O). Past
    /// [`RING_CAPACITY`] the oldest pending event is dropped and counted.
    pub fn record(&self, event: &FlightEvent) {
        let line = event.render(trace::now_nanos());
        events_counter().inc();
        let mut j = self.inner.journal.lock().expect("flight recorder lock");
        if j.ring.len() >= RING_CAPACITY {
            j.ring.pop_front();
            j.dropped_since_flush += 1;
            dropped_counter().inc();
        }
        j.ring.push_back(line);
    }

    /// Drains the ring — plus any newly finished tracing spans and moved
    /// latency histograms — to the current segment, rotating past
    /// [`SEGMENT_ROTATE_BYTES`]. No fsync: pair with [`Recorder::force_dump`] at
    /// shutdown (the installed panic hook covers crashes).
    pub fn flush(&self) -> io::Result<()> {
        let mut j = self.inner.journal.lock().expect("flight recorder lock");
        self.inner.flush_locked(&mut j)
    }

    /// Flushes and fsyncs, best-effort: errors are swallowed because the
    /// callers (shutdown paths, drop impls) have nowhere to report them.
    pub fn force_dump(&self) {
        let mut j = self.inner.journal.lock().expect("flight recorder lock");
        let _ = self.inner.flush_locked(&mut j);
        if let Some(seg) = j.segment.as_ref() {
            let _ = seg.file.sync_data();
        }
    }

    /// Panic-hook variant of [`Recorder::force_dump`]: never blocks (a held or
    /// poisoned lock on the panicking thread must not deadlock or
    /// double-panic the unwind).
    fn try_force_dump(&self) {
        if let Ok(mut j) = self.inner.journal.try_lock() {
            let _ = self.inner.flush_locked(&mut j);
            if let Some(seg) = j.segment.as_ref() {
                let _ = seg.file.sync_data();
            }
        }
    }
}

impl Inner {
    /// Collects the pending lines (ring + new spans + moved histograms)
    /// and appends them as frames; see [`Recorder::flush`].
    fn flush_locked(&self, j: &mut Journal) -> io::Result<()> {
        let mut lines: Vec<(u64, String)> = Vec::with_capacity(j.ring.len());
        if j.dropped_since_flush > 0 {
            let ev = FlightEvent::new("ring_overflow").field("dropped", j.dropped_since_flush);
            lines.push((trace::now_nanos(), ev.render(trace::now_nanos())));
            j.dropped_since_flush = 0;
        }
        for line in j.ring.drain(..) {
            let ts = line
                .strip_prefix("ts=")
                .and_then(|rest| rest.split('\t').next())
                .and_then(|ts| ts.parse::<u64>().ok())
                .unwrap_or(0);
            lines.push((ts, line));
        }
        // Spans: read the global sink non-destructively and remember the
        // high-water id, so concurrent snapshot/drain users are unharmed.
        for span in trace::snapshot_spans() {
            if span.id <= j.last_span_id {
                continue;
            }
            j.last_span_id = j.last_span_id.max(span.id);
            let mut ev = FlightEvent::new("span")
                .field("name", span.name)
                .field("trace", span.trace)
                .field("span", span.id)
                .field("parent", span.parent)
                .field("start_ns", span.start_ns)
                .field("dur_ns", span.duration_nanos());
            for (k, v) in &span.attrs {
                ev.fields.push((*k, v.clone()));
            }
            lines.push((span.end_ns, ev.render(span.end_ns)));
        }
        // Histogram snapshots, only for histograms that moved since the
        // last flush: the doctor's health report reads the *last* `hist`
        // event per name for its fsync/batch percentiles.
        let mut hists: Vec<(String, metrics::HistogramSnapshot)> = Vec::new();
        metrics::visit(|_, _| {}, |_, _| {}, |name, h| hists.push((name.to_string(), h)));
        let now = trace::now_nanos();
        for (name, h) in hists {
            if h.count == 0 || j.hist_counts.get(&name).copied() == Some(h.count) {
                continue;
            }
            j.hist_counts.insert(name.clone(), h.count);
            let ev = FlightEvent::new("hist")
                .field("name", &name)
                .field("count", h.count)
                .field("sum", h.sum)
                .field("max", h.max)
                .field("p50", format!("{:.0}", h.quantile_nanos(0.5)))
                .field("p90", format!("{:.0}", h.quantile_nanos(0.9)))
                .field("p99", format!("{:.0}", h.quantile_nanos(0.99)));
            lines.push((now, ev.render(now)));
        }
        if lines.is_empty() {
            return Ok(());
        }
        lines.sort_by_key(|&(ts, _)| ts);

        // Frame everything into one buffer, then append with one write.
        let mut buf: Vec<u8> = Vec::new();
        for (_, line) in &lines {
            let payload = line.as_bytes();
            let payload = &payload[..payload.len().min(MAX_PAYLOAD_BYTES)];
            let mut frame = Vec::with_capacity(payload.len() + FRAME_OVERHEAD as usize);
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&j.next_seq.to_le_bytes());
            frame.extend_from_slice(payload);
            let crc = fnv1a64(&frame);
            frame.extend_from_slice(&crc.to_le_bytes());
            buf.extend_from_slice(&frame);
            j.next_seq += 1;
        }

        if j.segment.is_none() {
            j.segment = Some(self.open_segment(j.next_seq - lines.len() as u64)?);
        }
        // analyze: allow(panic): the segment was just created above if absent
        let seg = j.segment.as_mut().expect("segment open");
        // Re-anchor at the tracked length so the leftovers of a previous
        // failed append can never sit between two valid frames.
        seg.file.set_len(seg.bytes)?;
        seg.file.seek(SeekFrom::Start(seg.bytes))?;
        seg.file.write_all(&buf)?;
        seg.bytes += buf.len() as u64;
        bytes_counter().add(buf.len() as u64);
        flushes_counter().inc();
        if seg.bytes >= SEGMENT_ROTATE_BYTES {
            j.segment = None; // closed; the next flush starts a new segment
        }
        Ok(())
    }

    /// Creates the segment file named after its first record's seq and
    /// prunes the oldest segments past [`MAX_SEGMENTS`].
    fn open_segment(&self, first_seq: u64) -> io::Result<Segment> {
        let path = self.dir.join(segment_file_name(first_seq));
        let mut file =
            fs::OpenOptions::new().create(true).truncate(true).write(true).open(&path)?;
        file.write_all(&FLIGHT_MAGIC)?;
        let mut names = segment_seqs(&self.dir)?;
        names.sort_unstable();
        while names.len() > MAX_SEGMENTS {
            let oldest = names.remove(0);
            let _ = fs::remove_file(self.dir.join(segment_file_name(oldest)));
        }
        Ok(Segment { file, bytes: FLIGHT_MAGIC.len() as u64 })
    }
}

/// `flight-<seq:020>.fdr`.
pub fn segment_file_name(first_seq: u64) -> String {
    format!("{SEGMENT_PREFIX}{first_seq:020}{SEGMENT_SUFFIX}")
}

/// The first-record seq encoded in a segment file name, if it is one.
pub fn segment_name_seq(name: &str) -> Option<u64> {
    name.strip_prefix(SEGMENT_PREFIX)?.strip_suffix(SEGMENT_SUFFIX)?.parse().ok()
}

/// Seqs of every segment file in `dir` (unsorted).
fn segment_seqs(dir: &Path) -> io::Result<Vec<u64>> {
    let mut seqs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(segment_name_seq) {
            seqs.push(seq);
        }
    }
    Ok(seqs)
}

// ---- Read-only scanning (the doctor's view) -------------------------------

/// One decoded journal record.
#[derive(Clone, Debug)]
pub struct FlightRecord {
    /// Journal-wide sequence number.
    pub seq: u64,
    /// The payload line (parse with [`parse_line`]).
    pub line: String,
}

/// A read-only scan of one segment file. Never truncates anything.
#[derive(Debug)]
pub struct SegmentScan {
    /// The scanned file.
    pub path: PathBuf,
    /// The seq its file name claims for the first record.
    pub first_name_seq: u64,
    /// Checksum-valid records, in order.
    pub records: Vec<FlightRecord>,
    /// Bytes past the last valid frame (torn tail or trailing garbage).
    pub trailing_bytes: u64,
    /// Header-level corruption (missing/damaged magic), fatal for the
    /// whole segment.
    pub error: Option<String>,
}

/// A read-only scan of a whole journal directory.
#[derive(Debug, Default)]
pub struct DirScan {
    /// Per-segment results, ordered by file-name seq.
    pub segments: Vec<SegmentScan>,
    /// Every valid record across all segments, in seq order.
    pub records: Vec<FlightRecord>,
    /// Bytes of torn tails across all segments. Tails are tolerated on
    /// *any* segment, not just the newest: a writer reopened after a
    /// crash starts a fresh segment, stranding the previous tear
    /// mid-journal. Crash residue is normal; see [`DirScan::corruption`]
    /// for what is not.
    pub torn_bytes: u64,
    /// Findings that make the journal *corrupt* rather than merely torn:
    /// damaged headers, name/seq mismatches, and sequence breaks or gaps
    /// between checksum-valid records — a byte flip inside recorded data
    /// always surfaces here (the damaged record fails its checksum, so
    /// the surviving neighbors no longer count in steps of one).
    pub corruption: Vec<String>,
}

/// Scans one segment read-only: validates the magic, then decodes frames
/// until the first short/implausible/checksum-failing one.
pub fn scan_segment(path: &Path) -> io::Result<SegmentScan> {
    let first_name_seq =
        path.file_name().and_then(|n| n.to_str()).and_then(segment_name_seq).unwrap_or(0);
    let bytes = fs::read(path)?;
    let mut scan = SegmentScan {
        path: path.to_path_buf(),
        first_name_seq,
        records: Vec::new(),
        trailing_bytes: 0,
        error: None,
    };
    if bytes.len() < FLIGHT_MAGIC.len() || bytes[..FLIGHT_MAGIC.len()] != FLIGHT_MAGIC {
        scan.error = Some(format!("{}: bad or missing segment magic", path.display()));
        return Ok(scan);
    }
    let mut at = FLIGHT_MAGIC.len();
    while at < bytes.len() {
        let Some(rec) = read_frame(&bytes, at) else {
            break;
        };
        let (seq, line, next) = rec;
        scan.records.push(FlightRecord { seq, line });
        at = next;
    }
    scan.trailing_bytes = (bytes.len() - at) as u64;
    Ok(scan)
}

/// Decodes the frame at `at`, returning `(seq, payload, next_offset)` or
/// `None` on a short frame, implausible length, checksum mismatch, or
/// non-UTF-8 payload. Every access is bounds-checked: arbitrary
/// corruption must end the scan, never panic it.
fn read_frame(bytes: &[u8], at: usize) -> Option<(u64, String, usize)> {
    let remaining = bytes.len().checked_sub(at)?;
    if (remaining as u64) < FRAME_OVERHEAD {
        return None;
    }
    let len = u32::from_le_bytes(bytes.get(at..at + 4)?.try_into().ok()?) as usize;
    if len as u64 > remaining as u64 - FRAME_OVERHEAD {
        return None;
    }
    let seq = u64::from_le_bytes(bytes.get(at + 4..at + 12)?.try_into().ok()?);
    let payload_end = at + 12 + len;
    let crc_stored = u64::from_le_bytes(bytes.get(payload_end..payload_end + 8)?.try_into().ok()?);
    if fnv1a64(bytes.get(at..payload_end)?) != crc_stored {
        return None;
    }
    let line = std::str::from_utf8(bytes.get(at + 12..payload_end)?).ok()?.to_string();
    Some((seq, line, payload_end + 8))
}

/// Scans every segment in `dir` read-only, classifying damage: torn
/// tails (anywhere — restarts strand them mid-journal) are normal crash
/// residue reported via [`DirScan::torn_bytes`]; damaged headers,
/// name/seq mismatches, and sequence breaks between checksum-valid
/// records land in [`DirScan::corruption`].
pub fn scan_dir(dir: &Path) -> io::Result<DirScan> {
    let mut seqs = segment_seqs(dir)?;
    seqs.sort_unstable();
    let mut out = DirScan::default();
    for seq in &seqs {
        let scan = scan_segment(&dir.join(segment_file_name(*seq)))?;
        if let Some(err) = &scan.error {
            out.corruption.push(err.clone());
        }
        out.torn_bytes += scan.trailing_bytes;
        if let Some(first) = scan.records.first() {
            if first.seq != scan.first_name_seq {
                out.corruption.push(format!(
                    "{}: first record seq {} does not match file name seq {}",
                    scan.path.display(),
                    first.seq,
                    scan.first_name_seq
                ));
            }
        }
        out.records.extend(scan.records.iter().cloned());
        out.segments.push(scan);
    }
    for pair in out.records.windows(2) {
        if pair[1].seq != pair[0].seq + 1 {
            out.corruption.push(format!(
                "sequence break: record {} followed by {}",
                pair[0].seq, pair[1].seq
            ));
        }
    }
    Ok(out)
}

// ---- The process-global slot and panic hook -------------------------------

fn active_slot() -> &'static Mutex<Option<Recorder>> {
    static SLOT: OnceLock<Mutex<Option<Recorder>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Installs the process-global recorder writing into `dir`, replacing
/// (and force-dumping) any previous one; a no-op if a recorder for the
/// same directory is already active. Also installs, once, a `std::panic`
/// hook that records the panic message and best-effort dumps the ring,
/// so the journal survives crashes that never reach a shutdown path.
pub fn install(dir: &Path) -> io::Result<()> {
    {
        let slot = active_slot().lock().expect("flight recorder slot lock");
        if slot.as_ref().is_some_and(|r| r.dir() == dir) {
            return Ok(());
        }
    }
    let rec = Recorder::open(dir)?;
    install_panic_hook();
    let prev = active_slot().lock().expect("flight recorder slot lock").replace(rec);
    if let Some(prev) = prev {
        prev.force_dump();
    }
    Ok(())
}

/// Removes the active recorder after a final force-dump.
pub fn uninstall() {
    let prev = active_slot().lock().expect("flight recorder slot lock").take();
    if let Some(prev) = prev {
        prev.force_dump();
    }
}

/// Whether a process-global recorder is installed.
pub fn is_active() -> bool {
    active_slot().lock().expect("flight recorder slot lock").is_some()
}

/// The active recorder's journal directory, if one is installed.
pub fn active_dir() -> Option<PathBuf> {
    active_slot().lock().expect("flight recorder slot lock").as_ref().map(|r| r.dir().to_path_buf())
}

/// Records `event` through the active recorder; a cheap no-op when none
/// is installed.
pub fn record(event: FlightEvent) {
    let rec = active_slot().lock().expect("flight recorder slot lock").clone();
    if let Some(rec) = rec {
        rec.record(&event);
    }
}

/// Flushes the active recorder's ring to disk (no-op when none).
pub fn flush_active() -> io::Result<()> {
    let rec = active_slot().lock().expect("flight recorder slot lock").clone();
    match rec {
        Some(rec) => rec.flush(),
        None => Ok(()),
    }
}

/// Force-dumps (flush + fsync, best-effort) the active recorder.
pub fn force_dump_active() {
    let rec = active_slot().lock().expect("flight recorder slot lock").clone();
    if let Some(rec) = rec {
        rec.force_dump();
    }
}

fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Everything here is try-lock and best-effort: the panic may
            // hold any of these locks, and a second panic would abort.
            if let Ok(slot) = active_slot().try_lock() {
                if let Some(rec) = slot.as_ref() {
                    let ev = FlightEvent::new("panic").field("message", info);
                    if let Ok(mut j) = rec.inner.journal.try_lock() {
                        if j.ring.len() >= RING_CAPACITY {
                            j.ring.pop_front();
                        }
                        let line = ev.render(trace::now_nanos());
                        j.ring.push_back(line);
                    }
                    rec.try_force_dump();
                }
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pscc-recorder-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    fn ev(kind: &'static str, n: u64) -> FlightEvent {
        FlightEvent::new(kind).field("n", n)
    }

    #[test]
    fn record_flush_scan_roundtrip() {
        let dir = tmp("roundtrip");
        let rec = Recorder::open(&dir).expect("open");
        rec.record(&ev("delta", 1));
        rec.record(&FlightEvent::new("delta").field("graph", "g\t1\n2\\3"));
        rec.flush().expect("flush");
        let scan = scan_dir(&dir).expect("scan");
        assert!(scan.corruption.is_empty(), "{:?}", scan.corruption);
        assert_eq!(scan.torn_bytes, 0);
        let deltas: Vec<_> =
            scan.records.iter().filter(|r| r.line.contains("event=delta")).collect();
        assert_eq!(deltas.len(), 2);
        let fields = parse_line(&deltas[1].line);
        let graph = fields.iter().find(|(k, _)| k == "graph").expect("graph field");
        assert_eq!(graph.1, "g\t1\n2\\3", "adversarial value roundtrips");
        assert_eq!(scan.records.first().map(|r| r.seq), Some(1));
    }

    #[test]
    fn reopen_continues_the_sequence_in_a_new_segment() {
        let dir = tmp("reopen");
        {
            let rec = Recorder::open(&dir).expect("open");
            rec.record(&ev("delta", 1));
            rec.flush().expect("flush");
        }
        let rec = Recorder::open(&dir).expect("reopen");
        rec.record(&ev("delta", 2));
        rec.flush().expect("flush");
        let scan = scan_dir(&dir).expect("scan");
        assert!(scan.corruption.is_empty(), "{:?}", scan.corruption);
        assert!(scan.segments.len() >= 2, "reopen starts a fresh segment");
        let event_seqs: Vec<u64> =
            scan.records.iter().filter(|r| r.line.contains("event=delta")).map(|r| r.seq).collect();
        assert_eq!(event_seqs.len(), 2);
        assert!(event_seqs[1] > event_seqs[0]);
    }

    #[test]
    fn torn_tail_is_tolerated_and_reported() {
        let dir = tmp("torn");
        let rec = Recorder::open(&dir).expect("open");
        rec.record(&ev("delta", 1));
        rec.record(&ev("delta", 2));
        rec.flush().expect("flush");
        let mut seqs = segment_seqs(&dir).expect("list");
        seqs.sort_unstable();
        let path = dir.join(segment_file_name(*seqs.last().expect("one segment")));
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() - 5]).expect("tear");
        let scan = scan_dir(&dir).expect("scan");
        assert!(scan.corruption.is_empty(), "a torn tail is not corruption: {:?}", scan.corruption);
        assert!(scan.torn_bytes > 0);
        let before: Vec<_> =
            scan.records.iter().filter(|r| r.line.contains("event=delta")).collect();
        assert_eq!(before.len(), 1, "the record before the tear survives");
    }

    #[test]
    fn byte_flip_in_an_older_segment_breaks_the_sequence() {
        let dir = tmp("corrupt");
        {
            let rec = Recorder::open(&dir).expect("open");
            for i in 0..4 {
                rec.record(&ev("delta", i));
            }
            rec.flush().expect("flush");
        }
        // A reopened recorder puts newer records in a fresh segment, so a
        // byte flip inside the older segment's records leaves a hole in
        // the sequence instead of a plausible torn tail.
        let rec2 = Recorder::open(&dir).expect("reopen");
        rec2.record(&ev("delta", 9));
        rec2.flush().expect("flush");
        let mut seqs = segment_seqs(&dir).expect("list");
        seqs.sort_unstable();
        let path = dir.join(segment_file_name(seqs[0]));
        let mut bytes = fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).expect("corrupt");
        let scan = scan_dir(&dir).expect("scan");
        assert!(!scan.corruption.is_empty(), "byte flip mid-journal must be flagged");
    }

    #[test]
    fn rotation_bounds_the_segment_count() {
        let dir = tmp("rotate");
        let rec = Recorder::open(&dir).expect("open");
        let big = "x".repeat(8 * 1024);
        // Enough bulk to force several rotations past MAX_SEGMENTS.
        for round in 0..((MAX_SEGMENTS as u64 + 3) * (SEGMENT_ROTATE_BYTES / (8 * 1024))) {
            rec.record(&FlightEvent::new("bulk").field("pad", &big).field("round", round));
            if round % 8 == 0 {
                rec.flush().expect("flush");
            }
        }
        rec.flush().expect("flush");
        let seqs = segment_seqs(&dir).expect("list");
        assert!((1..=MAX_SEGMENTS).contains(&seqs.len()), "{} segments on disk", seqs.len());
        let scan = scan_dir(&dir).expect("scan");
        assert!(scan.corruption.is_empty(), "{:?}", scan.corruption);
    }

    #[test]
    fn header_damage_is_an_error() {
        let dir = tmp("header");
        let rec = Recorder::open(&dir).expect("open");
        rec.record(&ev("delta", 1));
        rec.flush().expect("flush");
        let mut seqs = segment_seqs(&dir).expect("list");
        seqs.sort_unstable();
        let path = dir.join(segment_file_name(seqs[0]));
        let mut bytes = fs::read(&path).expect("read");
        bytes[3] ^= 0xff;
        fs::write(&path, &bytes).expect("damage");
        let scan = scan_dir(&dir).expect("scan");
        assert!(!scan.corruption.is_empty(), "magic damage must be corruption");
    }

    #[test]
    fn escape_roundtrip_is_exact() {
        for s in ["plain", "a\tb", "x\\y", "line\nbreak\rret", "\\t not a tab", ""] {
            assert_eq!(unescape_field_value(&escape_field_value(s)), s, "{s:?}");
        }
    }
}

//! Monotonic-clock timing primitives: the wall-clock [`Timer`] and the
//! named-phase accumulator [`PhaseTimer`] used for the Fig. 9
//! running-time breakdown.
//!
//! These moved here from `pscc_runtime::timer` so the workspace has one
//! stopwatch implementation shared by the algorithms, the engine's
//! instrumentation, and the benches; `pscc_runtime` re-exports them for
//! compatibility.

use std::time::{Duration, Instant};

/// A simple wall-clock stopwatch.
#[derive(Clone, Copy, Debug)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts a new timer.
    pub fn start() -> Self {
        Self { start: Instant::now() }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds since start.
    pub fn seconds(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Restarts the timer and returns the elapsed time up to now.
    pub fn lap(&mut self) -> Duration {
        let e = self.start.elapsed();
        self.start = Instant::now();
        e
    }
}

/// Accumulates wall-clock time into named phases.
///
/// The SCC driver uses the phase names of §4 / Fig. 9: `trim`,
/// `first_scc`, `multi_search`, `table_resize`, `labeling`, `other`.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimer {
    phases: Vec<(String, Duration)>,
}

impl PhaseTimer {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `d` to phase `name` (creating it on first use).
    pub fn add(&mut self, name: &str, d: Duration) {
        if let Some(entry) = self.phases.iter_mut().find(|(n, _)| n == name) {
            entry.1 += d;
        } else {
            self.phases.push((name.to_string(), d));
        }
    }

    /// Times `f` and charges its duration to `name`.
    pub fn run<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let t = Timer::start();
        let r = f();
        self.add(name, t.elapsed());
        r
    }

    /// Total accumulated seconds in phase `name` (zero if absent).
    pub fn seconds(&self, name: &str) -> f64 {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, d)| d.as_secs_f64()).unwrap_or(0.0)
    }

    /// All phases in insertion order.
    pub fn phases(&self) -> &[(String, Duration)] {
        &self.phases
    }

    /// Sum over all phases, in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().map(|(_, d)| d.as_secs_f64()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_measures_positive_time() {
        let t = Timer::start();
        std::hint::black_box((0..10_000).sum::<u64>());
        assert!(t.seconds() >= 0.0);
    }

    #[test]
    fn lap_restarts() {
        let mut t = Timer::start();
        let first = t.lap();
        let second = t.elapsed();
        assert!(first >= Duration::ZERO);
        assert!(second <= first + Duration::from_secs(5));
    }

    #[test]
    fn phase_timer_accumulates() {
        let mut pt = PhaseTimer::new();
        pt.add("a", Duration::from_millis(10));
        pt.add("a", Duration::from_millis(5));
        pt.add("b", Duration::from_millis(1));
        assert!((pt.seconds("a") - 0.015).abs() < 1e-9);
        assert!((pt.seconds("b") - 0.001).abs() < 1e-9);
        assert_eq!(pt.phases().len(), 2);
    }

    #[test]
    fn phase_timer_missing_phase_is_zero() {
        let pt = PhaseTimer::new();
        assert_eq!(pt.seconds("nope"), 0.0);
    }

    #[test]
    fn run_charges_phase_and_returns_value() {
        let mut pt = PhaseTimer::new();
        let v = pt.run("work", || 42);
        assert_eq!(v, 42);
        assert!(pt.seconds("work") >= 0.0);
        assert!(pt.total_seconds() >= pt.seconds("work") - 1e-12);
    }
}

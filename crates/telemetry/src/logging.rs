//! Leveled stderr logging, env-filtered by `PSCC_LOG`.
//!
//! The [`log!`](crate::log) macro prints to stderr only when its level is
//! admitted by the `PSCC_LOG` environment variable, which is read once per
//! process: `error`, `warn`, `info`, or `debug` (case-insensitive) admit
//! that level and everything more severe; unset, empty, `off`, or
//! unrecognized values disable logging entirely — so tests stay quiet by
//! default and diagnostics never depend on being run under a harness.
//!
//! ```no_run
//! pscc_telemetry::log!(Warn, "compaction of {} failed", "dir");
//! ```

use std::sync::OnceLock;

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed and its effect is lost.
    Error,
    /// Degraded but continuing (e.g. maintenance skipped).
    Warn,
    /// Notable lifecycle events.
    Info,
    /// Verbose diagnostics.
    Debug,
}

impl Level {
    /// Lowercase name as printed in the log prefix.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Parses a `PSCC_LOG` value: a maximum admitted level, or `None` for off.
pub fn parse_level(s: &str) -> Option<Level> {
    match s.trim().to_ascii_lowercase().as_str() {
        "error" => Some(Level::Error),
        "warn" | "warning" => Some(Level::Warn),
        "info" => Some(Level::Info),
        "debug" | "trace" => Some(Level::Debug),
        _ => None,
    }
}

/// The process-wide maximum admitted level (`None` = logging off), read
/// from `PSCC_LOG` once on first use.
pub fn max_level() -> Option<Level> {
    static MAX: OnceLock<Option<Level>> = OnceLock::new();
    *MAX.get_or_init(|| std::env::var("PSCC_LOG").ok().as_deref().and_then(parse_level))
}

/// Whether a message at `level` should be emitted.
#[inline]
pub fn level_enabled(level: Level) -> bool {
    if cfg!(feature = "telemetry-off") {
        return false;
    }
    matches!(max_level(), Some(max) if level <= max)
}

/// Logs a formatted message to stderr at the given level.
///
/// The first argument is a [`Level`] variant name (`Error`, `Warn`,
/// `Info`, `Debug`); the rest is a `format!` argument list. Filtered by
/// `PSCC_LOG` (see the [module docs](crate::logging)); a filtered-out call
/// costs one relaxed load and a branch.
#[macro_export]
macro_rules! log {
    ($level:ident, $($arg:tt)*) => {
        if $crate::logging::level_enabled($crate::logging::Level::$level) {
            // analyze: allow(logging): this IS the log! sink every other crate routes through
            eprintln!("[pscc {}] {}", $crate::logging::Level::$level.as_str(),
                format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_levels_case_insensitively() {
        assert_eq!(parse_level("error"), Some(Level::Error));
        assert_eq!(parse_level("WARN"), Some(Level::Warn));
        assert_eq!(parse_level(" Info "), Some(Level::Info));
        assert_eq!(parse_level("debug"), Some(Level::Debug));
        assert_eq!(parse_level("trace"), Some(Level::Debug));
    }

    #[test]
    fn parse_rejects_everything_else() {
        for s in ["", "off", "none", "2", "verbose"] {
            assert_eq!(parse_level(s), None, "{s:?}");
        }
    }

    #[test]
    fn levels_order_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn log_macro_compiles_with_format_args() {
        // PSCC_LOG is unset under the test harness, so this must be silent;
        // the point is that the macro expands and type-checks.
        crate::log!(Debug, "value = {}, pair = {:?}", 1, (2, 3));
    }
}

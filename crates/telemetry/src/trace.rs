//! Structured tracing spans: per-thread span stacks, cross-thread context
//! propagation, and a bounded ring-buffer sink of finished spans.
//!
//! A span brackets one stage of work. [`span`] pushes onto the calling
//! thread's stack (the current top becomes the parent); dropping the
//! returned [`SpanGuard`] pops it and publishes a finished [`SpanRecord`]
//! into the global sink. Timestamps are nanoseconds since a process-wide
//! monotonic epoch, so records from different threads order causally.
//!
//! Parentage crosses threads explicitly: capture [`current_context`] on
//! the submitting thread and wrap the worker's body in [`with_context`] —
//! the runtime's `par_for` workers and `Background` jobs do this, so a
//! trace started in `apply_delta` keeps its identity through scoped
//! workers and deferred compactions.
//!
//! The sink holds the most recent [`SPAN_SINK_CAPACITY`] records; older
//! ones are dropped (tracing must never grow unbounded in a server), and
//! every eviction increments the `pscc_trace_spans_dropped_total` counter
//! so the loss is visible in exposition dumps. Tests read the sink with
//! [`snapshot_spans`] or [`drain_spans`].

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Maximum number of finished spans retained by the global sink.
pub const SPAN_SINK_CAPACITY: usize = 4096;

/// Identity a span hands to work running on another thread: the trace it
/// belongs to and the span that should become the remote work's parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace identifier shared by every span of one causal chain.
    pub trace: u64,
    /// Span id the next child should claim as its parent.
    pub parent: u64,
}

/// One finished span, as published to the sink.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Unique span id (process-global, never reused).
    pub id: u64,
    /// Parent span id, or `0` for a root span.
    pub parent: u64,
    /// Trace id shared with ancestors and descendants.
    pub trace: u64,
    /// Stage name, e.g. `"apply_delta"` or `"plan"`.
    pub name: &'static str,
    /// Start time in nanoseconds since the process epoch.
    pub start_ns: u64,
    /// End time in nanoseconds since the process epoch.
    pub end_ns: u64,
    /// `key=value` attributes set while the span was open.
    pub attrs: Vec<(&'static str, String)>,
}

impl SpanRecord {
    /// Wall-clock duration of the span in nanoseconds.
    pub fn duration_nanos(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Value of attribute `key`, if set.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v.as_str())
    }
}

struct ActiveSpan {
    id: u64,
    parent: u64,
    trace: u64,
    name: &'static str,
    start_ns: u64,
    attrs: Vec<(&'static str, String)>,
}

thread_local! {
    static STACK: RefCell<Vec<ActiveSpan>> = const { RefCell::new(Vec::new()) };
    static REMOTE: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// Monotonically increasing id source for spans and traces (0 = none).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn alloc_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Nanoseconds since the process-wide monotonic epoch.
pub fn now_nanos() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    u64::try_from(EPOCH.get_or_init(Instant::now).elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn sink() -> &'static Mutex<VecDeque<SpanRecord>> {
    static SINK: OnceLock<Mutex<VecDeque<SpanRecord>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(VecDeque::new()))
}

/// Cached handle for the `pscc_trace_spans_dropped_total` counter: spans
/// evicted unread because the sink was full. A nonzero value in an
/// exposition dump means the trace window is shorter than the retention
/// the reader assumed.
fn spans_dropped_counter() -> &'static std::sync::Arc<crate::metrics::Counter> {
    static C: OnceLock<std::sync::Arc<crate::metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| crate::metrics::counter("pscc_trace_spans_dropped_total"))
}

/// Starts a span named `name` on this thread and returns the guard that
/// ends it on drop.
///
/// The parent is the innermost open span on this thread, else the context
/// installed by [`with_context`], else the span starts a fresh trace.
/// When telemetry is disabled the guard is inert (no clock read, nothing
/// published).
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { live: false, id: 0 };
    }
    let (trace, parent) = STACK.with(|s| {
        if let Some(top) = s.borrow().last() {
            (top.trace, top.id)
        } else if let Some(ctx) = REMOTE.get() {
            (ctx.trace, ctx.parent)
        } else {
            (alloc_id(), 0)
        }
    });
    let id = alloc_id();
    let start_ns = now_nanos();
    STACK.with(|s| {
        s.borrow_mut().push(ActiveSpan { id, parent, trace, name, start_ns, attrs: Vec::new() })
    });
    SpanGuard { live: true, id }
}

/// Ends its span on drop. Created by [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    live: bool,
    id: u64,
}

impl SpanGuard {
    /// Attaches a `key=value` attribute to this span.
    ///
    /// No-op if the guard is inert or (defensively) no longer on top of a
    /// well-nested stack.
    pub fn set_attr(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if !self.live {
            return;
        }
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(entry) = stack.iter_mut().rev().find(|e| e.id == self.id) {
                entry.attrs.push((key, value.to_string()));
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let finished = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards drop in reverse creation order, so this span is the
            // top; tolerate a mismatch rather than corrupting the stack.
            match stack.last() {
                Some(top) if top.id == self.id => stack.pop(),
                _ => None,
            }
        });
        if let Some(a) = finished {
            let record = SpanRecord {
                id: a.id,
                parent: a.parent,
                trace: a.trace,
                name: a.name,
                start_ns: a.start_ns,
                end_ns: now_nanos(),
                attrs: a.attrs,
            };
            let mut q = sink().lock().expect("span sink poisoned");
            if q.len() >= SPAN_SINK_CAPACITY {
                q.pop_front();
                spans_dropped_counter().inc();
            }
            q.push_back(record);
        }
    }
}

/// The identity spans started *now* on this thread would inherit: the
/// innermost open span, else the installed remote context.
pub fn current_context() -> Option<TraceContext> {
    if !crate::enabled() {
        return None;
    }
    STACK
        .with(|s| s.borrow().last().map(|top| TraceContext { trace: top.trace, parent: top.id }))
        .or_else(|| REMOTE.with(Cell::get))
}

/// Runs `f` with `ctx` installed as this thread's ambient parent, so spans
/// started inside (with an empty local stack) join the captured trace.
///
/// The previous ambient context is restored on exit, even on panic.
pub fn with_context<R>(ctx: Option<TraceContext>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<TraceContext>);
    impl Drop for Restore {
        fn drop(&mut self) {
            REMOTE.with(|r| r.set(self.0));
        }
    }
    let prev = REMOTE.with(|r| r.replace(ctx));
    let _restore = Restore(prev);
    f()
}

/// Copies every retained finished span out of the sink (oldest first)
/// without clearing it.
pub fn snapshot_spans() -> Vec<SpanRecord> {
    sink().lock().expect("span sink poisoned").iter().cloned().collect()
}

/// Removes and returns every retained finished span (oldest first).
pub fn drain_spans() -> Vec<SpanRecord> {
    sink().lock().expect("span sink poisoned").drain(..).collect()
}

#[cfg(test)]
#[cfg(not(feature = "telemetry-off"))]
mod tests {
    use super::*;

    /// Serializes the tests that read or flood the global sink: the
    /// overflow test evicts everything, so it must not interleave with a
    /// test that snapshots its own freshly finished spans.
    fn sink_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn sink_overflow_is_counted_and_surfaced() {
        let _serial = sink_test_lock();
        let before = crate::TelemetrySnapshot::capture().counter("pscc_trace_spans_dropped_total");
        // One more span than the capacity guarantees at least one
        // eviction even against an empty sink.
        for _ in 0..=SPAN_SINK_CAPACITY {
            let _s = span("test_overflow_filler");
        }
        let snap = crate::TelemetrySnapshot::capture();
        let dropped = snap.counter("pscc_trace_spans_dropped_total");
        assert!(dropped > before, "evictions must be counted ({dropped} <= {before})");
        assert_eq!(snapshot_spans().len(), SPAN_SINK_CAPACITY, "sink stays bounded");
        assert!(snap.render_text().contains("pscc_trace_spans_dropped_total"));
        assert!(snap.render_json().contains("pscc_trace_spans_dropped_total"));
    }

    #[test]
    fn nested_spans_share_a_trace_and_parent_correctly() {
        let _serial = sink_test_lock();
        let (root_id, root_trace) = {
            let mut root = span("test_trace_root");
            root.set_attr("graph", "t1");
            {
                let _inner = span("test_trace_inner");
                assert!(current_context().is_some(), "inner span visible");
            }
            let ctx = current_context().expect("root still open");
            (ctx.parent, ctx.trace)
        };
        let spans = snapshot_spans();
        let root = spans
            .iter()
            .rev()
            .find(|s| s.name == "test_trace_root" && s.id == root_id)
            .expect("root span recorded");
        assert_eq!(root.trace, root_trace);
        assert_eq!(root.parent, 0);
        assert_eq!(root.attr("graph"), Some("t1"));
        let inner = spans
            .iter()
            .rev()
            .find(|s| s.name == "test_trace_inner" && s.trace == root_trace)
            .expect("inner span recorded");
        assert_eq!(inner.parent, root.id);
        assert!(inner.start_ns >= root.start_ns);
        assert!(inner.end_ns <= root.end_ns);
        assert!(root.duration_nanos() >= inner.duration_nanos());
    }

    #[test]
    fn context_propagates_across_threads() {
        let _serial = sink_test_lock();
        let (ctx, root_id) = {
            let _root = span("test_ctx_root");
            let ctx = current_context().expect("root open");
            (ctx, ctx.parent)
        };
        let child_trace = std::thread::scope(|scope| {
            scope
                .spawn(move || {
                    with_context(Some(ctx), || {
                        let _child = span("test_ctx_remote_child");
                        current_context().expect("child open").trace
                    })
                })
                .join()
                .expect("worker")
        });
        assert_eq!(child_trace, ctx.trace);
        let spans = snapshot_spans();
        let child = spans
            .iter()
            .rev()
            .find(|s| s.name == "test_ctx_remote_child" && s.trace == ctx.trace)
            .expect("remote child recorded");
        assert_eq!(child.parent, root_id);
    }

    #[test]
    fn context_is_restored_after_with_context() {
        let fake = Some(TraceContext { trace: 999_999, parent: 1 });
        with_context(fake, || {
            assert_eq!(current_context(), fake);
            with_context(None, || assert_eq!(current_context(), None));
            assert_eq!(current_context(), fake);
        });
    }
}

#[cfg(test)]
#[cfg(feature = "telemetry-off")]
mod off_tests {
    use super::*;

    #[test]
    fn spans_are_inert_when_compiled_out() {
        let before = snapshot_spans().len();
        {
            let mut s = span("test_off_span");
            s.set_attr("k", 1);
        }
        assert_eq!(snapshot_spans().len(), before);
        assert_eq!(current_context(), None);
    }
}

//! Exposition: the diffable [`TelemetrySnapshot`] plus Prometheus-style
//! text and JSON rendering of everything in the global registry.
//!
//! Histograms render as Prometheus *summaries*: `{quantile="…"}` series
//! for p50/p90/p99 plus `_max`, `_sum`, and `_count` companions, all in
//! nanoseconds. Metric names may carry labels inline
//! (`name{graph="g"}`); the renderer merges the `quantile` label into an
//! existing label set and derives the `# TYPE` line from the base name.

use crate::metrics::{self, HistogramSnapshot};
use std::collections::BTreeMap;

/// A point-in-time copy of every registered metric, for tests, diffing,
/// and rendering. Capture with [`TelemetrySnapshot::capture`]; subtract a
/// baseline with [`TelemetrySnapshot::since`] to get a window.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    /// Counter values by full (labeled) metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by full metric name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by full metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// Captures the current value of every registered metric.
    pub fn capture() -> Self {
        let mut snap = TelemetrySnapshot::default();
        metrics::visit(
            |name, v| {
                snap.counters.insert(name.to_string(), v);
            },
            |name, v| {
                snap.gauges.insert(name.to_string(), v);
            },
            |name, h| {
                snap.histograms.insert(name.to_string(), h);
            },
        );
        snap
    }

    /// The window `self − earlier`: counters and histogram buckets are
    /// subtracted (metrics absent from `earlier` count from zero); gauges
    /// keep their later instantaneous value.
    pub fn since(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                (k.clone(), v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| match earlier.histograms.get(k) {
                Some(base) => (k.clone(), h.since(base)),
                None => (k.clone(), h.clone()),
            })
            .collect();
        TelemetrySnapshot { counters, gauges: self.gauges.clone(), histograms }
    }

    /// Value of counter `name` (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of gauge `name` (zero if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram state under `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Renders Prometheus-style text exposition (see the [module
    /// docs](crate::snapshot) for the histogram encoding).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut typed: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let base = base_name(name);
            if typed.insert(base.to_string()) {
                out.push_str(&format!("# TYPE {} {kind}\n", sanitize_text_name(base)));
            }
        };
        for (name, v) in &self.counters {
            type_line(&mut out, name, "counter");
            out.push_str(&format!("{} {v}\n", sanitize_text_name(name)));
        }
        for (name, v) in &self.gauges {
            type_line(&mut out, name, "gauge");
            out.push_str(&format!("{} {v}\n", sanitize_text_name(name)));
        }
        for (name, h) in &self.histograms {
            type_line(&mut out, name, "summary");
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                let series = with_label(name, "quantile", label);
                out.push_str(&format!(
                    "{} {:.0}\n",
                    sanitize_text_name(&series),
                    h.quantile_nanos(q)
                ));
            }
            out.push_str(&format!("{} {}\n", sanitize_text_name(&suffixed(name, "_max")), h.max));
            out.push_str(&format!("{} {}\n", sanitize_text_name(&suffixed(name, "_sum")), h.sum));
            out.push_str(&format!(
                "{} {}\n",
                sanitize_text_name(&suffixed(name, "_count")),
                h.count
            ));
        }
        out
    }

    /// Renders the snapshot as one JSON object with `counters`, `gauges`,
    /// and `histograms` maps (histograms carry count/sum/max and
    /// p50/p90/p99 in nanoseconds).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_json_map(&mut out, self.counters.iter().map(|(k, v)| (k, v.to_string())));
        out.push_str("},\n  \"gauges\": {");
        push_json_map(&mut out, self.gauges.iter().map(|(k, v)| (k, v.to_string())));
        out.push_str("},\n  \"histograms\": {");
        push_json_map(
            &mut out,
            self.histograms.iter().map(|(k, h)| {
                let body = format!(
                    "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {:.0}, \
                     \"p90\": {:.0}, \"p99\": {:.0}}}",
                    h.count,
                    h.sum,
                    h.max,
                    h.quantile_nanos(0.5),
                    h.quantile_nanos(0.9),
                    h.quantile_nanos(0.99),
                );
                (k, body)
            }),
        );
        out.push_str("}\n}\n");
        out
    }
}

/// Captures and renders the global registry as Prometheus-style text.
pub fn render_text() -> String {
    TelemetrySnapshot::capture().render_text()
}

/// Captures and renders the global registry as JSON.
pub fn render_json() -> String {
    TelemetrySnapshot::capture().render_json()
}

/// The metric name with any inline `{label="…"}` set stripped.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Escapes a label *value* for inline inclusion in a labeled metric name
/// (`name{key="value"}`): `\` → `\\`, `"` → `\"`, and newlines/carriage
/// returns to the two-character sequences `\n`/`\r`, keeping both the
/// text and JSON expositions parseable. Callers building labeled names
/// from runtime strings (graph names, span attributes) must route the
/// value through this before registering the metric.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Last-resort defense for [`TelemetrySnapshot::render_text`]: a raw
/// newline inside a registered name (a caller that skipped
/// [`escape_label_value`]) would break the one-metric-per-line format, so
/// it is escaped at render time.
fn sanitize_text_name(name: &str) -> std::borrow::Cow<'_, str> {
    if name.contains(['\n', '\r']) {
        std::borrow::Cow::Owned(name.replace('\n', "\\n").replace('\r', "\\r"))
    } else {
        std::borrow::Cow::Borrowed(name)
    }
}

/// Merges `key="value"` into a possibly-labeled metric name.
fn with_label(name: &str, key: &str, value: &str) -> String {
    match name.split_once('{') {
        Some((base, rest)) => format!("{base}{{{key}=\"{value}\",{rest}"),
        None => format!("{name}{{{key}=\"{value}\"}}"),
    }
}

/// Appends `suffix` to the base name, keeping any inline label set.
fn suffixed(name: &str, suffix: &str) -> String {
    match name.split_once('{') {
        Some((base, rest)) => format!("{base}{suffix}{{{rest}"),
        None => format!("{name}{suffix}"),
    }
}

/// Writes `"key": value` pairs (values pre-rendered as raw JSON).
fn push_json_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {v}", escape_json(k)));
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
#[cfg(not(feature = "telemetry-off"))]
mod tests {
    use super::*;

    #[test]
    fn name_helpers_merge_labels() {
        assert_eq!(base_name("pscc_x_total{graph=\"g\"}"), "pscc_x_total");
        assert_eq!(base_name("pscc_x_total"), "pscc_x_total");
        assert_eq!(
            with_label("pscc_h{graph=\"g\"}", "quantile", "0.5"),
            "pscc_h{quantile=\"0.5\",graph=\"g\"}"
        );
        assert_eq!(with_label("pscc_h", "quantile", "0.9"), "pscc_h{quantile=\"0.9\"}");
        assert_eq!(suffixed("pscc_h{graph=\"g\"}", "_count"), "pscc_h_count{graph=\"g\"}");
        assert_eq!(suffixed("pscc_h", "_sum"), "pscc_h_sum");
    }

    #[test]
    fn snapshot_diff_and_render_roundtrip() {
        crate::counter("pscc_snapshot_test_total{case=\"diff\"}").add(3);
        let h = crate::histogram("pscc_snapshot_test_nanos");
        h.record_nanos(100);
        let before = TelemetrySnapshot::capture();
        crate::counter("pscc_snapshot_test_total{case=\"diff\"}").add(2);
        h.record_nanos(200);
        crate::gauge("pscc_snapshot_test_depth").set(4);
        let window = TelemetrySnapshot::capture().since(&before);
        assert_eq!(window.counter("pscc_snapshot_test_total{case=\"diff\"}"), 2);
        assert_eq!(window.gauge("pscc_snapshot_test_depth"), 4);
        let hs = window.histogram("pscc_snapshot_test_nanos").expect("registered");
        assert_eq!(hs.count, 1);
        assert_eq!(hs.sum, 200);

        let text = window.render_text();
        assert!(text.contains("# TYPE pscc_snapshot_test_total counter"), "{text}");
        assert!(text.contains("pscc_snapshot_test_total{case=\"diff\"} 2"), "{text}");
        assert!(text.contains("# TYPE pscc_snapshot_test_nanos summary"), "{text}");
        assert!(text.contains("pscc_snapshot_test_nanos{quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("pscc_snapshot_test_nanos_count 1"), "{text}");

        let json = window.render_json();
        assert!(json.contains("\"pscc_snapshot_test_total{case=\\\"diff\\\"}\": 2"), "{json}");
        assert!(json.contains("\"p99\""), "{json}");
    }

    #[test]
    fn json_escaping_handles_quotes_and_controls() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny"), "x\\u000ay");
    }

    #[test]
    fn label_value_escaping_keeps_adversarial_names_parseable() {
        assert_eq!(escape_label_value(r#"g"1"#), r#"g\"1"#);
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("x\ny\r"), r"x\ny\r");
        // An adversarial graph name routed through the helper renders as
        // exactly one text line and valid JSON.
        let name = format!(
            "pscc_snapshot_adversarial_total{{graph=\"{}\"}}",
            escape_label_value("a\"\\\nb")
        );
        crate::counter(&name).add(1);
        let snap = TelemetrySnapshot::capture();
        let text = snap.render_text();
        let line = text
            .lines()
            .find(|l| l.contains("pscc_snapshot_adversarial_total{"))
            .expect("metric rendered");
        assert!(line.ends_with(" 1"), "{line}");
        let json = snap.render_json();
        assert!(json.contains("pscc_snapshot_adversarial_total"), "{json}");
    }

    #[test]
    fn raw_newlines_in_names_are_sanitized_at_render_time() {
        // A caller that skipped escape_label_value must still not be able
        // to break the line-oriented exposition.
        crate::counter("pscc_snapshot_rawnl_total{graph=\"a\nb\"}").add(2);
        crate::gauge("pscc_snapshot_rawnl_depth{graph=\"c\rd\"}").set(1);
        let h = crate::histogram("pscc_snapshot_rawnl\nnanos");
        h.record_nanos(5);
        let text = TelemetrySnapshot::capture().render_text();
        assert!(!text.contains("a\nb"), "raw newline leaked into text exposition");
        assert!(!text.contains("c\rd"), "raw carriage return leaked into text exposition");
        // Each adversarial metric still renders as one complete line.
        assert!(text.lines().any(|l| l.contains("rawnl_total") && l.ends_with(" 2")), "{text}");
        assert!(text.lines().any(|l| l.contains("rawnl_depth") && l.ends_with(" 1")), "{text}");
        assert!(text.lines().any(|l| l.contains("rawnl\\nnanos_count") && l.ends_with(" 1")));
    }
}

//! Lock-free metric instruments and the global name-keyed registry.
//!
//! Three instrument kinds, all safe to share across threads and all one
//! relaxed atomic op on the hot path:
//!
//! * [`Counter`] — monotone `u64` event count,
//! * [`Gauge`] — signed instantaneous value (queue depths, in-flight work),
//! * [`Histogram`] — fixed-bucket log-scale latency distribution in
//!   nanoseconds, with ≤ 25 % relative bucket width, from which
//!   p50/p90/p99/max are derived at read time.
//!
//! Instruments live in a process-global registry keyed by name. Labels use
//! the Prometheus convention *inside the name itself* — e.g.
//! `pscc_catalog_deltas_total{graph="serve"}` — so the registry stays a
//! flat string map and the exposition layer needs no label model. Callers
//! on hot paths cache the returned [`Arc`] instead of re-looking it up.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if cfg!(feature = "telemetry-off") {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depth, in-flight operations).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if cfg!(feature = "telemetry-off") {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        if cfg!(feature = "telemetry-off") {
            return;
        }
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Increments now and decrements when the returned guard drops —
    /// panic-safe bracketing for "in-flight" gauges.
    pub fn inc_scoped(&self) -> GaugeGuard<'_> {
        self.inc();
        GaugeGuard { gauge: self }
    }
}

/// Decrements its [`Gauge`] on drop. Created by [`Gauge::inc_scoped`].
#[derive(Debug)]
pub struct GaugeGuard<'a> {
    gauge: &'a Gauge,
}

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.gauge.dec();
    }
}

/// Number of buckets in every [`Histogram`].
///
/// Four sub-buckets per power-of-two octave: values 0–3 get exact buckets,
/// then each octave `[2^e, 2^{e+1})` splits into four, giving ≤ 25 %
/// relative bucket width. 160 buckets cover `[0, 7·2^38)` nanoseconds
/// (≈ 32 minutes); larger values saturate into the top bucket.
pub const HISTOGRAM_BUCKETS: usize = 160;

/// Bucket index for a nanosecond value (see [`HISTOGRAM_BUCKETS`]).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (e - 2)) & 3) as usize;
        (4 * (e - 1) + sub).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `idx`, in nanoseconds.
#[inline]
pub fn bucket_lower(idx: usize) -> u64 {
    if idx < 4 {
        idx as u64
    } else {
        let e = idx / 4 + 1;
        let sub = (idx % 4) as u64;
        (4 + sub) << (e - 2)
    }
}

/// Exclusive upper bound of bucket `idx`, in nanoseconds.
///
/// The top (saturation) bucket is unbounded; `u64::MAX` stands in for ∞.
#[inline]
pub fn bucket_upper(idx: usize) -> u64 {
    if idx + 1 >= HISTOGRAM_BUCKETS {
        u64::MAX
    } else {
        bucket_lower(idx + 1)
    }
}

/// A fixed-bucket log-scale latency histogram over `u64` nanoseconds.
///
/// Recording is wait-free: one relaxed `fetch_add` per of bucket, count,
/// and sum, plus a relaxed `fetch_max` for the exact maximum. Quantiles
/// are computed at read time from a [`HistogramSnapshot`].
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records a duration (saturating to `u64` nanoseconds).
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_nanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records a raw nanosecond value.
    #[inline]
    pub fn record_nanos(&self, v: u64) {
        if cfg!(feature = "telemetry-off") {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state out for quantile math and diffing.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], from which quantiles are
/// interpolated. Diffable via [`HistogramSnapshot::since`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of all recorded values, in nanoseconds.
    pub sum: u64,
    /// Exact maximum recorded value, in nanoseconds.
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (used when diffing against an absent baseline).
    pub fn empty() -> Self {
        Self { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Whether no values were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Count in bucket `idx` (for tests and renderers).
    pub fn bucket(&self, idx: usize) -> u64 {
        self.buckets[idx]
    }

    /// The `q`-quantile in nanoseconds (`q` clamped to `[0, 1]`), linearly
    /// interpolated inside the containing bucket; `0.0` when empty.
    ///
    /// The reported value lies within the log-scale bucket holding the
    /// exact sample quantile, so its relative error is bounded by the
    /// bucket width (≤ 25 %). The top of the highest non-empty bucket is
    /// capped at the exact recorded maximum.
    pub fn quantile_nanos(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 >= rank {
                let lo = bucket_lower(idx) as f64;
                let hi = (bucket_upper(idx).min(self.max).max(bucket_lower(idx))) as f64;
                let frac = ((rank - cum as f64) / c as f64).clamp(0.0, 1.0);
                return (lo + (hi - lo) * frac).min(self.max as f64);
            }
            cum += c;
        }
        self.max as f64
    }

    /// The `q`-quantile in seconds.
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        self.quantile_nanos(q) * 1e-9
    }

    /// Mean recorded value in nanoseconds (`0.0` when empty).
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-wise difference `self − earlier` (saturating), for windowed
    /// percentiles in tests and benches.
    ///
    /// `max` keeps the later snapshot's value: the exact maximum of only
    /// the window is not recoverable from two cumulative snapshots.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }
}

/// The process-global instrument registry (one map per instrument kind).
#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Returns the counter registered under `name`, creating it on first use.
///
/// Hot paths should cache the `Arc` (e.g. in a `OnceLock` or a struct
/// field) instead of re-resolving the name per event.
pub fn counter(name: &str) -> Arc<Counter> {
    let mut map = registry().counters.lock().expect("registry poisoned");
    map.entry(name.to_string()).or_default().clone()
}

/// Returns the gauge registered under `name`, creating it on first use.
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut map = registry().gauges.lock().expect("registry poisoned");
    map.entry(name.to_string()).or_default().clone()
}

/// Returns the histogram registered under `name`, creating it on first use.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut map = registry().histograms.lock().expect("registry poisoned");
    map.entry(name.to_string()).or_default().clone()
}

/// Visits every registered instrument (used by the snapshot layer).
pub(crate) fn visit(
    mut on_counter: impl FnMut(&str, u64),
    mut on_gauge: impl FnMut(&str, i64),
    mut on_histogram: impl FnMut(&str, HistogramSnapshot),
) {
    for (name, c) in registry().counters.lock().expect("registry poisoned").iter() {
        on_counter(name, c.get());
    }
    for (name, g) in registry().gauges.lock().expect("registry poisoned").iter() {
        on_gauge(name, g.get());
    }
    for (name, h) in registry().histograms.lock().expect("registry poisoned").iter() {
        on_histogram(name, h.snapshot());
    }
}

#[cfg(test)]
#[cfg(not(feature = "telemetry-off"))]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        g.inc();
        g.dec();
        assert_eq!(g.get(), 4);
        {
            let _guard = g.inc_scoped();
            assert_eq!(g.get(), 5);
        }
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn bucket_boundaries_are_contiguous_and_exact_below_four() {
        // Values 0..4 land in their own exact buckets.
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
        }
        // Every bucket's lower bound maps back to that bucket, and bounds
        // tile the axis with no gaps or overlaps.
        for idx in 0..HISTOGRAM_BUCKETS - 1 {
            let lo = bucket_lower(idx);
            let hi = bucket_upper(idx);
            assert!(lo < hi, "bucket {idx}: empty range {lo}..{hi}");
            assert_eq!(bucket_index(lo), idx, "lower bound of {idx}");
            assert_eq!(bucket_index(hi - 1), idx, "last value of {idx}");
            assert_eq!(bucket_index(hi), idx + 1, "first value past {idx}");
            assert_eq!(bucket_upper(idx), bucket_lower(idx + 1));
        }
        // Relative width ≤ 25% for every bucket past the exact region.
        for idx in 4..HISTOGRAM_BUCKETS - 1 {
            let (lo, hi) = (bucket_lower(idx), bucket_upper(idx));
            let rel = (hi - lo) as f64 / lo as f64;
            assert!(rel <= 0.25 + 1e-12, "bucket {idx}: relative width {rel}");
        }
    }

    #[test]
    fn saturation_at_top_bucket() {
        let h = Histogram::new();
        h.record_nanos(u64::MAX);
        h.record_nanos(bucket_lower(HISTOGRAM_BUCKETS - 1));
        let s = h.snapshot();
        assert_eq!(s.bucket(HISTOGRAM_BUCKETS - 1), 2);
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        // Quantiles never exceed the exact observed max even when the top
        // bucket is formally unbounded.
        assert!(s.quantile_nanos(0.99) <= u64::MAX as f64);
        assert!(s.quantile_nanos(0.0) >= bucket_lower(HISTOGRAM_BUCKETS - 1) as f64);
    }

    #[test]
    fn percentile_interpolation_single_bucket() {
        // All mass in one bucket: quantiles interpolate linearly between
        // the bucket's bounds and stay within them.
        let h = Histogram::new();
        for _ in 0..100 {
            h.record_nanos(1000);
        }
        let s = h.snapshot();
        let idx = bucket_index(1000);
        let (lo, hi) = (bucket_lower(idx) as f64, s.max as f64);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let v = s.quantile_nanos(q);
            assert!(v >= lo && v <= hi, "q={q}: {v} outside [{lo}, {hi}]");
        }
        assert_eq!(s.quantile_nanos(1.0), s.max as f64);
    }

    #[test]
    fn percentiles_order_and_split_mass() {
        let h = Histogram::new();
        // 90 fast (≈1µs) + 10 slow (≈1ms) samples: p50 must sit near the
        // fast mode, p99 near the slow one.
        for _ in 0..90 {
            h.record_nanos(1_000);
        }
        for _ in 0..10 {
            h.record_nanos(1_000_000);
        }
        let s = h.snapshot();
        let p50 = s.quantile_nanos(0.50);
        let p90 = s.quantile_nanos(0.90);
        let p99 = s.quantile_nanos(0.99);
        assert!(p50 <= p90 && p90 <= p99, "quantiles must be monotone");
        assert!(p50 < 1_500.0, "p50 {p50} should be in the fast mode");
        assert!(p99 > 800_000.0, "p99 {p99} should be in the slow mode");
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 1_000_000);
    }

    #[test]
    fn snapshot_since_diffs_bucketwise() {
        let h = Histogram::new();
        h.record_nanos(10);
        let before = h.snapshot();
        h.record_nanos(10);
        h.record_nanos(2000);
        let window = h.snapshot().since(&before);
        assert_eq!(window.count, 2);
        assert_eq!(window.sum, 2010);
        assert_eq!(window.bucket(bucket_index(10)), 1);
        assert_eq!(window.bucket(bucket_index(2000)), 1);
    }

    #[test]
    fn zero_and_empty_cases() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.quantile_nanos(0.5), 0.0);
        assert_eq!(s.mean_nanos(), 0.0);
        let h = Histogram::new();
        h.record_nanos(0);
        assert_eq!(h.snapshot().quantile_nanos(0.5), 0.0);
    }

    #[test]
    fn registry_returns_same_instrument_for_same_name() {
        let a = counter("pscc_test_registry_total{case=\"same\"}");
        let b = counter("pscc_test_registry_total{case=\"same\"}");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
        let h1 = histogram("pscc_test_registry_nanos");
        let h2 = histogram("pscc_test_registry_nanos");
        assert!(Arc::ptr_eq(&h1, &h2));
        let g1 = gauge("pscc_test_registry_depth");
        let g2 = gauge("pscc_test_registry_depth");
        assert!(Arc::ptr_eq(&g1, &g2));
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]

        /// Histogram quantiles agree with exact sorted-sample quantiles to
        /// within one log-scale bucket: the reported value must lie inside
        /// the bucket containing the exact sample quantile.
        #[test]
        fn quantiles_match_exact_within_bucket(
            samples in proptest::collection::vec(0u64..5_000_000_000, 1..400),
            qs in proptest::collection::vec(0u32..101, 1..8),
        ) {
            let h = Histogram::new();
            for &v in &samples {
                h.record_nanos(v);
            }
            let snap = h.snapshot();
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for &qi in &qs {
                let q = qi as f64 / 100.0;
                let rank = q * sorted.len() as f64;
                let pos = (rank.ceil() as usize).clamp(1, sorted.len()) - 1;
                let exact = sorted[pos];
                let got = snap.quantile_nanos(q);
                let idx = bucket_index(exact);
                let lo = bucket_lower(idx) as f64;
                let hi = bucket_upper(idx).min(snap.max) as f64;
                proptest::prop_assert!(
                    got >= lo && got <= hi.max(lo),
                    "q={q}: histogram {got} outside bucket [{lo}, {hi}] of exact {exact}"
                );
            }
        }
    }
}

#[cfg(test)]
#[cfg(feature = "telemetry-off")]
mod off_tests {
    use super::*;

    #[test]
    fn everything_is_a_no_op_when_compiled_out() {
        let c = Counter::new();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = Gauge::new();
        g.set(5);
        g.inc();
        assert_eq!(g.get(), 0);
        let h = Histogram::new();
        h.record_nanos(1234);
        assert!(h.snapshot().is_empty());
        assert!(!crate::enabled());
    }
}

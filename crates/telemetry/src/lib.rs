//! # pscc-telemetry
//!
//! Zero-dependency observability substrate for the parallel-scc workspace:
//!
//! * **Metrics** ([`metrics`]): lock-free [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket log-scale latency [`Histogram`]s (p50/p90/p99/max) held
//!   in a global name-keyed registry. A hot-path record is one relaxed
//!   atomic op, cheap enough to stay always-on.
//! * **Tracing** ([`trace`]): per-thread span stacks with start/end
//!   timestamps and `key=value` attributes, collected into a bounded
//!   ring-buffer sink — one instrumented `Catalog::apply_delta` yields a
//!   causal trace `normalize → classify → plan(tier) → execute → swap`
//!   with per-stage durations. [`TraceContext`] propagates parentage into
//!   scoped worker threads and background jobs.
//! * **Exposition** ([`snapshot`]): Prometheus-style text rendering, JSON
//!   rendering, and the diffable [`TelemetrySnapshot`] used by tests and
//!   benches.
//! * **Logging** ([`logging`]): the leveled [`log!`](crate::log) macro,
//!   env-filtered by `PSCC_LOG` (off when unset, so tests stay quiet).
//! * **Flight recorder** ([`recorder`]): a bounded, segment-rotated,
//!   crash-surviving on-disk event journal fed by structured events and
//!   the span sink, read back by `pscc-doctor` for post-mortem timeline
//!   reconstruction. Live telemetry dies with the process; the recorder
//!   is what survives it.
//!
//! Everything is hand-rolled on `std` — the workspace builds with no
//! network access, so no crates.io observability stack is available.
//!
//! ## Switching it off
//!
//! Two mechanisms, different costs:
//!
//! * [`set_enabled`]`(false)` is a runtime kill-switch consulted by the
//!   instrumentation call sites (one relaxed load); spans become inert and
//!   timed sections skip their clock reads.
//! * The `telemetry-off` cargo feature compiles every recording operation
//!   down to an empty inlined function, for checking the overhead claim
//!   against a build with no instrumentation text at all.

pub mod logging;
pub mod metrics;
pub mod recorder;
pub mod snapshot;
pub mod time;
pub mod trace;

pub use logging::Level;
pub use metrics::{
    counter, gauge, histogram, Counter, Gauge, GaugeGuard, Histogram, HistogramSnapshot,
    HISTOGRAM_BUCKETS,
};
pub use recorder::FlightEvent;
pub use snapshot::{escape_label_value, render_json, render_text, TelemetrySnapshot};
pub use time::{PhaseTimer, Timer};
pub use trace::{
    current_context, drain_spans, snapshot_spans, span, with_context, SpanGuard, SpanRecord,
    TraceContext,
};

use std::sync::atomic::{AtomicBool, Ordering};

/// Runtime kill-switch; telemetry starts enabled.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether telemetry is currently recording.
///
/// Instrumentation call sites check this before paying for clock reads or
/// span bookkeeping; always `false` under the `telemetry-off` feature.
#[inline]
pub fn enabled() -> bool {
    !cfg!(feature = "telemetry-off") && ENABLED.load(Ordering::Relaxed)
}

/// Turns the runtime telemetry kill-switch on or off (process-global).
///
/// Disabling stops new recordings; metrics already registered keep their
/// values and can still be snapshotted and rendered.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

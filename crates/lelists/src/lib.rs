//! # pscc-lelists — least-element lists (§5.2 of the paper)
//!
//! Given an undirected graph and a random total order ("priority") on its
//! vertices, vertex `u` belongs to `v`'s LE-list iff no earlier-priority
//! vertex is strictly closer to `v`. LE-lists power reachability-set size
//! estimation, influence estimation, and probabilistic tree embeddings;
//! each list has `O(log n)` entries whp.
//!
//! * [`bgss::le_lists`] — the parallel BGSS algorithm (Alg. 5): prefix-
//!   doubling batches of simultaneous multi-BFS, frontier maintained by the
//!   **parallel hash bag** ("ours") or by the edge-revisit/pack scheme
//!   ("ParlayLib-like" baseline). VGC is *not* applicable here: the BFS
//!   round = distance invariant must be preserved (§5.2).
//! * [`cohen::cohen_le_lists`] — Cohen's sequential pruned-BFS algorithm,
//!   the verification oracle.
//!
//! Both produce lists in the canonical order: decreasing distance =
//! increasing priority, so results are comparable with `==`.

pub mod bgss;
pub mod cohen;

pub use bgss::{le_lists, FrontierMode, LeListsConfig, LeListsResult};
pub use cohen::cohen_le_lists;

/// One LE-list entry: `(vertex, distance)`.
pub type LeEntry = (u32, u32);

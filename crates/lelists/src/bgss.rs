//! The parallel BGSS LE-lists algorithm (Alg. 5) with hash-bag frontiers.
//!
//! Vertices are permuted and processed in prefix-doubling batches. Each
//! batch runs a simultaneous multi-BFS from all its sources, pruned by the
//! tentative distances `δ(·)` of *previous* batches; round `r` of the BFS
//! reaches pairs at distance exactly `r`, so distances never need storing
//! in the frontier. After a batch, the collected `(u, src, d)` triples
//! update `δ` and are filtered per vertex in priority order to extend the
//! LE-lists.
//!
//! The frontier is a set of `(u, src)` pairs maintained either by the
//! parallel hash bag ("ours") or by a per-round table whose packed keys are
//! the next frontier (the edge-revisit-style baseline matching ParlayLib's
//! two-visit multi-BFS). VGC is not used: it would break the round =
//! distance invariant (§5.2).

use std::sync::atomic::{AtomicU32, Ordering};

use pscc_bag::{BagConfig, HashBag};
use pscc_graph::{UnGraph, V};
use pscc_runtime::{atomic_min_u32, par_range, random_permutation};
use pscc_table::{pack_pair, pair_source, pair_vertex, Insert, PairTable};

use crate::LeEntry;

/// Frontier engine for the multi-BFS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrontierMode {
    /// Parallel hash bag (ours).
    HashBag,
    /// Per-round table + pack (ParlayLib-like baseline).
    EdgeRevisit,
}

/// LE-lists configuration.
#[derive(Clone, Copy, Debug)]
pub struct LeListsConfig {
    /// Batch growth multiplier (Alg. 5 uses 2).
    pub beta: f64,
    /// Permutation seed.
    pub seed: u64,
    /// Frontier engine.
    pub mode: FrontierMode,
    /// Hash-bag parameters.
    pub bag: BagConfig,
}

impl Default for LeListsConfig {
    fn default() -> Self {
        Self { beta: 2.0, seed: 0x1e1, mode: FrontierMode::HashBag, bag: BagConfig::default() }
    }
}

/// Output of the parallel LE-list computation.
#[derive(Clone, Debug)]
pub struct LeListsResult {
    /// Per-vertex LE-lists (decreasing distance / increasing priority).
    pub lists: Vec<Vec<LeEntry>>,
    /// The priority order used (`priority[0]` = highest priority).
    pub priority: Vec<V>,
    /// Total BFS rounds across batches.
    pub rounds: usize,
    /// Total LE-list entries.
    pub total_size: usize,
}

/// Computes all LE-lists of `g` under a seeded random priority order.
pub fn le_lists(g: &UnGraph, cfg: &LeListsConfig) -> LeListsResult {
    let n = g.n();
    let priority = random_permutation(n, cfg.seed);
    let lists = le_lists_with_priority(g, &priority, cfg);
    let total_size = lists.0.iter().map(|l| l.len()).sum();
    LeListsResult { lists: lists.0, priority, rounds: lists.1, total_size }
}

/// Computes LE-lists for an explicit priority order; returns
/// `(lists, rounds)`. Exposed so tests can share a permutation with the
/// Cohen oracle.
pub fn le_lists_with_priority(
    g: &UnGraph,
    priority: &[V],
    cfg: &LeListsConfig,
) -> (Vec<Vec<LeEntry>>, usize) {
    let n = g.n();
    assert_eq!(priority.len(), n);
    if n == 0 {
        return (Vec::new(), 0);
    }
    // rank[v] = position of v in the priority order.
    let mut rank = vec![0u32; n];
    for (i, &v) in priority.iter().enumerate() {
        rank[v as usize] = i as u32;
    }
    let delta: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    let mut lists: Vec<Vec<LeEntry>> = vec![Vec::new(); n];
    let mut rounds = 0usize;

    let mut cursor = 0usize;
    let mut batch = 1usize;
    while cursor < n {
        let end = (cursor + batch).min(n);
        let sources = &priority[cursor..end];
        cursor = end;
        batch = ((batch as f64 * cfg.beta).ceil() as usize).max(batch + 1);

        // ---- multi-BFS for this batch ----
        let mut table = PairTable::with_capacity((sources.len() * 8).max(1024));
        // Triples (u, src, d) collected this batch.
        let mut triples: Vec<(V, V, u32)> = Vec::new();
        let mut frontier: Vec<u64> = Vec::new();
        for &s in sources {
            if delta[s as usize].load(Ordering::Relaxed) > 0 {
                let key = pack_pair(s, s);
                force_insert(&mut table, key);
                frontier.push(key);
                triples.push((s, s, 0));
            }
        }
        let mut bag: HashBag<u64> = HashBag::with_config(table.slot_count(), cfg.bag);
        // Keys whose global insert hit the probe limit (rare): re-inserted
        // after a grow at the end of the round.
        let overflow: std::sync::Mutex<Vec<u64>> = std::sync::Mutex::new(Vec::new());
        // Keys that are in the global table but could not be recorded in
        // the round structure (EdgeRevisit only).
        let missed: std::sync::Mutex<Vec<u64>> = std::sync::Mutex::new(Vec::new());
        let mut d = 0u32;
        while !frontier.is_empty() {
            rounds += 1;
            d += 1;
            // Grow proactively so mid-round Full events stay rare (§4.5).
            let mut grew = false;
            while table.len() * 4 >= table.slot_count() {
                table.grow();
                grew = true;
            }
            if grew {
                bag = HashBag::with_config(table.slot_count(), cfg.bag);
            }
            let mut next: Vec<u64> = match cfg.mode {
                FrontierMode::HashBag => {
                    let bag_ref = &bag;
                    expand(g, &frontier, &delta, &table, d, &overflow, |key| bag_ref.insert(key));
                    bag.extract_all()
                }
                FrontierMode::EdgeRevisit => {
                    let round = PairTable::with_capacity(table.slot_count());
                    let round_ref = &round;
                    let missed_ref = &missed;
                    expand(g, &frontier, &delta, &table, d, &overflow, |key| {
                        if round_ref.insert(key) == Insert::Full {
                            missed_ref.lock().expect("missed lock").push(key);
                        }
                    });
                    let mut keys = round.keys();
                    keys.append(&mut missed.lock().expect("missed lock"));
                    keys
                }
            };
            // Resolve overflowed global inserts: grow, retry, splice.
            loop {
                let pending = std::mem::take(&mut *overflow.lock().expect("overflow lock"));
                if pending.is_empty() {
                    break;
                }
                table.grow();
                bag = HashBag::with_config(table.slot_count(), cfg.bag);
                for key in pending {
                    match table.insert(key) {
                        Insert::Added => next.push(key),
                        Insert::Present => {}
                        Insert::Full => overflow.lock().expect("overflow lock").push(key),
                    }
                }
            }
            triples.extend(next.iter().map(|&key| (pair_vertex(key), pair_source(key), d)));
            frontier = next;
        }

        // ---- δ update + per-vertex filtering (Alg. 5 lines 5–7) ----
        par_range(0..triples.len(), 2048, &|r| {
            for &(u, _, d) in &triples[r] {
                atomic_min_u32(&delta[u as usize], d);
            }
        });
        // Sort by (vertex, priority rank): each vertex's candidates in
        // priority order.
        {
            let rank = &rank;
            pscc_runtime::par_sort_unstable_by_key(&mut triples[..], |&(u, s, _)| {
                ((u as u64) << 32) | rank[s as usize] as u64
            });
        }
        // Group boundaries, then filter each vertex's run independently.
        let bounds: Vec<usize> = {
            let t = &triples;
            let mut b: Vec<usize> =
                pscc_runtime::pack_index(t.len(), |i| i == 0 || t[i].0 != t[i - 1].0);
            b.push(t.len());
            b
        };
        {
            struct P(*mut Vec<LeEntry>);
            // SAFETY: P is only shared with the loop below; triples are
            // grouped by vertex and each group (hence each lists[u]) is
            // handled by exactly one task.
            unsafe impl Sync for P {}
            impl P {
                fn get(&self) -> *mut Vec<LeEntry> {
                    self.0
                }
            }
            let lptr = P(lists.as_mut_ptr());
            let triples = &triples;
            par_range(0..bounds.len().saturating_sub(1), 8, &|r| {
                for gi in r {
                    let (lo, hi) = (bounds[gi], bounds[gi + 1]);
                    let u = triples[lo].0 as usize;
                    // Keep a candidate iff strictly closer than everything
                    // kept before it (all of higher priority).
                    let mut run_min = u32::MAX;
                    // SAFETY: u is group gi's vertex and groups have
                    // distinct vertices, so this &mut to lists[u] is the
                    // only live reference to it.
                    let list = unsafe { &mut *lptr.get().add(u) };
                    for &(_, s, d) in &triples[lo..hi] {
                        if d < run_min {
                            run_min = d;
                            list.push((s, d));
                        }
                    }
                }
            });
        }
    }
    (lists, rounds)
}

/// One BFS round: expand every frontier pair to distance `d`, inserting
/// unseen pairs that beat `δ` into the global table and forwarding them via
/// `emit`. Probe-limit overflows are collected into `overflow` for the
/// caller to resolve after the round.
fn expand<F>(
    g: &UnGraph,
    frontier: &[u64],
    delta: &[AtomicU32],
    table: &PairTable,
    d: u32,
    overflow: &std::sync::Mutex<Vec<u64>>,
    emit: F,
) where
    F: Fn(u64) + Sync,
{
    par_range(0..frontier.len(), 1, &|r| {
        for i in r {
            let pair = frontier[i];
            let (v, s) = (pair_vertex(pair), pair_source(pair));
            for &u in g.neighbors(v) {
                if d < delta[u as usize].load(Ordering::Relaxed) {
                    let key = pack_pair(u, s);
                    match table.insert(key) {
                        Insert::Added => emit(key),
                        Insert::Present => {}
                        Insert::Full => overflow.lock().expect("overflow lock").push(key),
                    }
                }
            }
        }
    });
}

/// Insert that grows on demand (used only for seeding, outside parallel
/// sections).
fn force_insert(table: &mut PairTable, key: u64) {
    loop {
        match table.insert(key) {
            Insert::Added | Insert::Present => return,
            Insert::Full => table.grow(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohen::cohen_le_lists;
    use pscc_graph::generators::random::gnm_digraph;

    fn path_graph(n: usize) -> UnGraph {
        let edges: Vec<(V, V)> = (0..n as V - 1).map(|v| (v, v + 1)).collect();
        UnGraph::from_undirected_edges(n, &edges)
    }

    fn check_against_cohen(g: &UnGraph, seed: u64) {
        let perm = random_permutation(g.n(), seed);
        let want = cohen_le_lists(g, &perm);
        for mode in [FrontierMode::HashBag, FrontierMode::EdgeRevisit] {
            let cfg = LeListsConfig { mode, ..LeListsConfig::default() };
            let (got, _) = le_lists_with_priority(g, &perm, &cfg);
            assert_eq!(got, want, "mode {mode:?} seed {seed}");
        }
    }

    #[test]
    fn matches_cohen_on_path() {
        check_against_cohen(&path_graph(50), 1);
    }

    #[test]
    fn matches_cohen_on_random_graphs() {
        for seed in 0..4u64 {
            let g = gnm_digraph(120, 360, seed).symmetrize();
            check_against_cohen(&g, seed + 10);
        }
    }

    #[test]
    fn matches_cohen_on_disconnected_graph() {
        let g = gnm_digraph(200, 120, 5).symmetrize();
        check_against_cohen(&g, 3);
    }

    #[test]
    fn matches_cohen_on_grid() {
        let mut edges = Vec::new();
        let w = 12;
        for y in 0..w {
            for x in 0..w {
                let v = (y * w + x) as V;
                if x + 1 < w {
                    edges.push((v, v + 1));
                }
                if y + 1 < w {
                    edges.push((v, v + w as V));
                }
            }
        }
        let g = UnGraph::from_undirected_edges(w * w, &edges);
        check_against_cohen(&g, 8);
    }

    #[test]
    fn list_sizes_are_logarithmic() {
        let g = gnm_digraph(2000, 8000, 2).symmetrize();
        let res = le_lists(&g, &LeListsConfig::default());
        let max_len = res.lists.iter().map(|l| l.len()).max().unwrap();
        // O(log n) whp: ln(2000) ≈ 7.6; allow generous constant.
        assert!(max_len <= 40, "max LE-list length {max_len}");
        assert!(res.total_size >= g.n(), "every vertex has itself");
    }

    #[test]
    fn result_is_deterministic_for_seed() {
        let g = gnm_digraph(300, 900, 4).symmetrize();
        let a = le_lists(&g, &LeListsConfig::default());
        let b = le_lists(&g, &LeListsConfig::default());
        assert_eq!(a.lists, b.lists);
        assert_eq!(a.priority, b.priority);
    }

    #[test]
    fn empty_graph() {
        let g = UnGraph::from_undirected_edges(0, &[]);
        let res = le_lists(&g, &LeListsConfig::default());
        assert!(res.lists.is_empty());
        assert_eq!(res.total_size, 0);
    }

    #[test]
    fn single_vertex() {
        let g = UnGraph::from_undirected_edges(1, &[]);
        let res = le_lists(&g, &LeListsConfig::default());
        assert_eq!(res.lists, vec![vec![(0, 0)]]);
    }
}

//! Cohen's sequential LE-list construction (J. CSS 1997): process vertices
//! in priority order; each runs a BFS pruned wherever it is no longer the
//! closest-so-far vertex.

use std::collections::VecDeque;

use pscc_graph::{UnGraph, V};

use crate::LeEntry;

/// Builds all LE-lists sequentially for the priority order `perm`
/// (`perm[0]` has the highest priority). Lists come out sorted by
/// decreasing distance / increasing priority.
pub fn cohen_le_lists(g: &UnGraph, perm: &[V]) -> Vec<Vec<LeEntry>> {
    let n = g.n();
    assert_eq!(perm.len(), n, "perm must cover every vertex");
    let mut delta = vec![u32::MAX; n];
    let mut lists: Vec<Vec<LeEntry>> = vec![Vec::new(); n];
    let mut dist = vec![u32::MAX; n];
    let mut touched: Vec<V> = Vec::new();
    let mut q: VecDeque<V> = VecDeque::new();

    for &s in perm {
        // Pruned BFS from s: only continue through vertices strictly closer
        // to s than to every earlier-priority vertex.
        if delta[s as usize] == 0 {
            continue; // cannot happen for distinct vertices, but harmless
        }
        dist[s as usize] = 0;
        touched.push(s);
        q.push_back(s);
        delta[s as usize] = 0;
        lists[s as usize].push((s, 0));
        while let Some(v) = q.pop_front() {
            let d = dist[v as usize];
            for &u in g.neighbors(v) {
                if dist[u as usize] != u32::MAX {
                    continue; // already seen in this BFS
                }
                let du = d + 1;
                dist[u as usize] = du;
                touched.push(u);
                if du < delta[u as usize] {
                    delta[u as usize] = du;
                    lists[u as usize].push((s, du));
                    q.push_back(u);
                }
            }
        }
        for &v in &touched {
            dist[v as usize] = u32::MAX;
        }
        touched.clear();
    }
    lists
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> UnGraph {
        let edges: Vec<(V, V)> = (0..n as V - 1).map(|v| (v, v + 1)).collect();
        UnGraph::from_undirected_edges(n, &edges)
    }

    /// Brute-force oracle straight from the definition.
    fn brute_force(g: &UnGraph, perm: &[V]) -> Vec<Vec<LeEntry>> {
        let n = g.n();
        // All-pairs BFS distances.
        let mut dist = vec![vec![u32::MAX; n]; n];
        for s in 0..n as V {
            let mut q = VecDeque::new();
            dist[s as usize][s as usize] = 0;
            q.push_back(s);
            while let Some(v) = q.pop_front() {
                let d = dist[s as usize][v as usize];
                for &u in g.neighbors(v) {
                    if dist[s as usize][u as usize] == u32::MAX {
                        dist[s as usize][u as usize] = d + 1;
                        q.push_back(u);
                    }
                }
            }
        }
        (0..n)
            .map(|v| {
                let mut best = u32::MAX;
                let mut list = Vec::new();
                for &u in perm {
                    let d = dist[u as usize][v];
                    if d < best {
                        best = d;
                        list.push((u, d));
                    }
                }
                list
            })
            .collect()
    }

    #[test]
    fn matches_definition_on_path() {
        let g = path_graph(12);
        let perm: Vec<V> = vec![5, 0, 11, 3, 8, 1, 2, 4, 6, 7, 9, 10];
        assert_eq!(cohen_le_lists(&g, &perm), brute_force(&g, &perm));
    }

    #[test]
    fn matches_definition_on_random_graphs() {
        use pscc_runtime::random_permutation;
        for seed in 0..4u64 {
            let g = pscc_graph::generators::random::gnm_digraph(60, 150, seed).symmetrize();
            let perm = random_permutation(60, seed + 100);
            assert_eq!(cohen_le_lists(&g, &perm), brute_force(&g, &perm), "seed {seed}");
        }
    }

    #[test]
    fn first_priority_vertex_is_in_every_reachable_list() {
        let g = path_graph(8);
        let perm: Vec<V> = (0..8).collect();
        let lists = cohen_le_lists(&g, &perm);
        for (v, list) in lists.iter().enumerate() {
            assert_eq!(list[0], (0, v as u32), "vertex {v}");
        }
    }

    #[test]
    fn distances_strictly_decrease_along_each_list() {
        let g = pscc_graph::generators::random::gnm_digraph(80, 240, 9).symmetrize();
        let perm = pscc_runtime::random_permutation(80, 5);
        for list in cohen_le_lists(&g, &perm) {
            assert!(list.windows(2).all(|w| w[1].1 < w[0].1));
        }
    }

    #[test]
    fn own_vertex_terminates_each_list() {
        // Every vertex is distance 0 from itself, so (v, 0) is always last.
        let g = path_graph(6);
        let perm: Vec<V> = vec![3, 1, 5, 0, 2, 4];
        for (v, list) in cohen_le_lists(&g, &perm).into_iter().enumerate() {
            assert_eq!(*list.last().unwrap(), (v as u32, 0));
        }
    }

    #[test]
    fn disconnected_components_do_not_mix() {
        let g = UnGraph::from_undirected_edges(4, &[(0, 1), (2, 3)]);
        let perm: Vec<V> = vec![0, 1, 2, 3];
        let lists = cohen_le_lists(&g, &perm);
        assert_eq!(lists[2], vec![(2, 0)]);
        assert_eq!(lists[3], vec![(2, 1), (3, 0)]);
    }
}

//! # pscc-bag — the parallel hash bag (§3.3 of the paper)
//!
//! An unordered concurrent set ("bag") supporting
//!
//! * [`HashBag::insert`] — concurrent, lock-free; callers guarantee no
//!   duplicates (the SCC/CC/LE-list frontiers do this with a CAS on a
//!   per-vertex visited flag before inserting, Alg. 3 line 9);
//! * [`HashBag::extract_all`] — pack all elements into a vector and clear;
//! * [`HashBag::for_all`] — apply a function to all elements in parallel.
//!
//! The structure is a single pre-allocated flat array split into chunks of
//! exponentially growing sizes λ, 2λ, 4λ, …. Insertions go to a uniformly
//! random slot of the *current* chunk with linear probing; "resizing" is a
//! single CAS advancing the current-chunk cursor — **no copying ever
//! happens**. A sampling scheme (rate σ∕(α·chunk) per insert) detects when
//! the chunk's load factor passes α and triggers the advance. `extract_all`
//! and `for_all` touch only the used prefix, so their cost is proportional
//! to the number of elements plus λ (Theorem 3.1).

pub mod config;
pub mod item;

pub use config::BagConfig;
pub use item::BagItem;

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use pscc_runtime::{hash64, pack_map, par_range};

/// The parallel hash bag. See the crate docs for the design.
pub struct HashBag<T: BagItem> {
    /// Flat element storage; `T::EMPTY_BITS` marks free slots.
    slots: Box<[AtomicU64]>,
    /// `tails[i]` = end index (exclusive) of chunk `i`.
    tails: Box<[usize]>,
    /// Per-chunk sample counters.
    samples: Box<[AtomicUsize]>,
    /// Current chunk id.
    cur: AtomicUsize,
    /// Per-chunk sampling denominators: an insert into chunk `i` is sampled
    /// when `hash(x) % denom[i] == 0`, with `denom[i] ≈ α·size_i∕σ`.
    denoms: Box<[u64]>,
    /// A salt decorrelating slot choice and sampling across bags.
    salt: u64,
    cfg: BagConfig,
    _marker: std::marker::PhantomData<T>,
}

impl<T: BagItem> HashBag<T> {
    /// Creates a bag that can hold up to `max_elems` elements (e.g. `n`
    /// when maintaining a frontier of vertices) with default parameters.
    pub fn new(max_elems: usize) -> Self {
        Self::with_config(max_elems, BagConfig::default())
    }

    /// Creates a bag with explicit parameters.
    pub fn with_config(max_elems: usize, cfg: BagConfig) -> Self {
        assert!(cfg.lambda >= 2 && cfg.sigma >= 1 && cfg.alpha > 0.0 && cfg.alpha < 1.0);
        // Chunks of sizes λ, 2λ, 4λ, … until the usable capacity (α of the
        // total) covers max_elems.
        let needed = ((max_elems.max(1) as f64) / cfg.alpha).ceil() as usize + cfg.lambda;
        let mut tails = Vec::new();
        let mut size = cfg.lambda;
        let mut total = 0usize;
        while total < needed {
            total += size;
            tails.push(total);
            size *= 2;
        }
        let nchunks = tails.len();
        let slots: Box<[AtomicU64]> = (0..total).map(|_| AtomicU64::new(T::EMPTY_BITS)).collect();
        let samples: Box<[AtomicUsize]> = (0..nchunks).map(|_| AtomicUsize::new(0)).collect();
        let mut denoms = Vec::with_capacity(nchunks);
        let mut start = 0usize;
        for &end in &tails {
            let chunk = end - start;
            let denom = ((cfg.alpha * chunk as f64) / cfg.sigma as f64).ceil().max(1.0) as u64;
            denoms.push(denom);
            start = end;
        }
        Self {
            slots,
            tails: tails.into_boxed_slice(),
            samples,
            cur: AtomicUsize::new(0),
            denoms: denoms.into_boxed_slice(),
            salt: hash64(max_elems as u64 ^ 0xba6),
            cfg,
            _marker: std::marker::PhantomData,
        }
    }

    /// Total slot capacity (all chunks).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Index of the chunk currently receiving inserts.
    pub fn current_chunk(&self) -> usize {
        self.cur.load(Ordering::Relaxed)
    }

    /// End index of the used prefix (slots that `extract_all` will touch).
    pub fn used_prefix(&self) -> usize {
        self.tails[self.cur.load(Ordering::Relaxed)]
    }

    /// The configuration in effect.
    pub fn config(&self) -> &BagConfig {
        &self.cfg
    }

    #[inline]
    fn chunk_bounds(&self, r: usize) -> (usize, usize) {
        let start = if r == 0 { 0 } else { self.tails[r - 1] };
        (start, self.tails[r])
    }

    /// Attempts to advance the current chunk from `r` to `r + 1`
    /// (Fig. 5 `try_resize`). Lock-free; losing the CAS means someone else
    /// already resized, which is equally fine.
    fn try_resize(&self, r: usize) {
        if r + 1 < self.tails.len() {
            let _ = self.cur.compare_exchange(r, r + 1, Ordering::Relaxed, Ordering::Relaxed);
        }
    }

    /// Inserts `x`. Concurrent-safe. The caller must guarantee `x` is not
    /// already in the bag (deduplicate with a visited-flag CAS first) and
    /// that the total number of elements stays within `max_elems`.
    pub fn insert(&self, x: T) {
        debug_assert!(x.to_bits() != T::EMPTY_BITS, "cannot insert the sentinel");
        let bits = x.to_bits();
        // Per-call pseudo-randomness: elements are unique per round, so a
        // hash of the element (salted) is an adequate random source.
        let mut rnd = hash64(bits ^ self.salt);
        loop {
            let r = self.cur.load(Ordering::Relaxed);
            let (start, end) = self.chunk_bounds(r);
            let chunk = end - start;

            // Sampling: estimate chunk fill; resize when samples hit σ.
            if rnd.is_multiple_of(self.denoms[r]) {
                let s = self.samples[r].fetch_add(1, Ordering::Relaxed);
                if s >= self.cfg.sigma {
                    self.try_resize(r);
                    rnd = hash64(rnd);
                    continue;
                }
            }

            // Random slot in the current chunk, then linear probe.
            let mut i = start + (rnd >> 16) as usize % chunk;
            let mut probes = 0usize;
            loop {
                if self.slots[i]
                    .compare_exchange(T::EMPTY_BITS, bits, Ordering::Release, Ordering::Relaxed)
                    .is_ok()
                {
                    return;
                }
                i += 1;
                if i == end {
                    i = start;
                }
                probes += 1;
                if probes > self.cfg.kappa {
                    // Chunk (locally) too dense — resize and retry, unless
                    // this is the last chunk, where we keep probing: by
                    // construction capacity exceeds max_elems/α, so a free
                    // slot exists.
                    if r + 1 < self.tails.len() {
                        self.try_resize(r);
                        break;
                    }
                }
            }
            if probes > self.cfg.kappa {
                rnd = hash64(rnd);
                continue;
            }
        }
    }

    /// Packs all elements into a vector and empties the bag
    /// (Alg. 3 line 11). Not concurrent with `insert`.
    pub fn extract_all(&self) -> Vec<T> {
        let used = self.used_prefix();
        let out = pack_map(&self.slots[..used], |slot| {
            let bits = slot.load(Ordering::Acquire);
            (bits != T::EMPTY_BITS).then(|| T::from_bits(bits))
        });
        // Reset used prefix and counters.
        par_range(0..used, 4096, &|range| {
            for i in range {
                self.slots[i].store(T::EMPTY_BITS, Ordering::Relaxed);
            }
        });
        for s in self.samples.iter() {
            s.store(0, Ordering::Relaxed);
        }
        self.cur.store(0, Ordering::Relaxed);
        out
    }

    /// Applies `f` to every element in parallel without removing anything.
    /// Not concurrent with `insert`.
    pub fn for_all<F>(&self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let used = self.used_prefix();
        par_range(0..used, 2048, &|range| {
            for i in range {
                let bits = self.slots[i].load(Ordering::Acquire);
                if bits != T::EMPTY_BITS {
                    f(T::from_bits(bits));
                }
            }
        });
    }

    /// Exact element count (parallel scan of the used prefix).
    pub fn len_slow(&self) -> usize {
        use pscc_runtime::par_count;
        let used = self.used_prefix();
        par_count(used, |i| self.slots[i].load(Ordering::Relaxed) != T::EMPTY_BITS)
    }

    /// True if no elements are stored (exact, parallel scan).
    pub fn is_empty_slow(&self) -> bool {
        self.len_slow() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_runtime::par_for;
    use std::collections::HashSet;

    #[test]
    fn insert_then_extract_roundtrip() {
        let bag: HashBag<u32> = HashBag::new(10_000);
        for x in 0..5000u32 {
            bag.insert(x);
        }
        let mut got = bag.extract_all();
        got.sort_unstable();
        let expected: Vec<u32> = (0..5000).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn extract_empties_the_bag() {
        let bag: HashBag<u32> = HashBag::new(100);
        bag.insert(7);
        assert_eq!(bag.extract_all(), vec![7]);
        assert!(bag.extract_all().is_empty());
        assert_eq!(bag.current_chunk(), 0);
    }

    #[test]
    fn parallel_inserts_preserve_set() {
        let n = 200_000u32;
        let bag: HashBag<u32> = HashBag::new(n as usize);
        par_for(n as usize, |i| bag.insert(i as u32));
        let got = bag.extract_all();
        assert_eq!(got.len(), n as usize);
        let set: HashSet<u32> = got.into_iter().collect();
        assert_eq!(set.len(), n as usize);
    }

    #[test]
    fn reuse_after_extract() {
        let bag: HashBag<u32> = HashBag::new(50_000);
        for round in 0..5u32 {
            let lo = round * 10_000;
            par_for(10_000, |i| bag.insert(lo + i as u32));
            let got = bag.extract_all();
            assert_eq!(got.len(), 10_000, "round {round}");
            assert!(got.iter().all(|&x| x >= lo && x < lo + 10_000));
        }
    }

    #[test]
    fn resize_advances_chunks_under_load() {
        let cfg = BagConfig { lambda: 64, ..BagConfig::default() };
        let bag: HashBag<u32> = HashBag::with_config(100_000, cfg);
        par_for(50_000, |i| bag.insert(i as u32));
        assert!(bag.current_chunk() > 0, "expected chunk advance");
        assert_eq!(bag.len_slow(), 50_000);
    }

    #[test]
    fn tiny_lambda_failure_injection() {
        // Pathologically small first chunk: correctness must survive many
        // forced resizes and probe storms.
        let cfg = BagConfig { lambda: 2, sigma: 2, kappa: 2, ..BagConfig::default() };
        let bag: HashBag<u32> = HashBag::with_config(5_000, cfg);
        par_for(5_000, |i| bag.insert(i as u32));
        let got = bag.extract_all();
        assert_eq!(got.len(), 5_000);
    }

    #[test]
    fn fill_to_declared_capacity() {
        // Insert exactly max_elems: the last chunk must absorb everything.
        let n = 4096;
        let bag: HashBag<u32> = HashBag::new(n);
        par_for(n, |i| bag.insert(i as u32));
        assert_eq!(bag.len_slow(), n);
    }

    #[test]
    fn for_all_visits_every_element() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let bag: HashBag<u32> = HashBag::new(1000);
        for x in 0..1000u32 {
            bag.insert(x);
        }
        let sum = AtomicU64::new(0);
        bag.for_all(|x| {
            sum.fetch_add(x as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (0..1000u64).sum::<u64>());
        // for_all must not remove elements.
        assert_eq!(bag.len_slow(), 1000);
    }

    #[test]
    fn u64_items_work() {
        let bag: HashBag<u64> = HashBag::new(1000);
        for x in 0..500u64 {
            bag.insert(x << 32 | x);
        }
        let mut got = bag.extract_all();
        got.sort_unstable();
        assert_eq!(got.len(), 500);
        assert_eq!(got[0], 0);
        assert_eq!(got[499], 499u64 << 32 | 499);
    }

    #[test]
    fn used_prefix_is_proportional_to_size() {
        // Theorem 3.1: listing s elements touches O(s + λ) slots. With
        // default α = 0.5 the used prefix should stay within a small
        // multiple of the element count.
        let bag: HashBag<u32> = HashBag::new(1 << 20);
        par_for(10_000, |i| bag.insert(i as u32));
        let used = bag.used_prefix();
        assert!(
            used <= 8 * 10_000 + bag.config().lambda * 4,
            "used prefix {used} too large for 10k elements"
        );
    }

    #[test]
    fn capacity_covers_max_elems_over_alpha() {
        let bag: HashBag<u32> = HashBag::new(1000);
        assert!(bag.capacity() as f64 >= 1000.0 / bag.config().alpha);
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    #[cfg(debug_assertions)]
    fn inserting_u64_sentinel_panics_in_debug() {
        // Only u64::MAX collides with the slot sentinel; u32 items are
        // widened to u64, so even u32::MAX is storable.
        let bag: HashBag<u64> = HashBag::new(10);
        bag.insert(u64::MAX);
    }

    #[test]
    fn u32_max_is_a_legal_item() {
        // u32 items never collide with the u64 sentinel.
        let bag: HashBag<u32> = HashBag::new(10);
        bag.insert(u32::MAX);
        assert_eq!(bag.extract_all(), vec![u32::MAX]);
    }
}

//! Element trait for the hash bag.
//!
//! Elements are stored in `AtomicU64` slots, so an item must round-trip
//! through 64 bits and reserve one bit pattern as the EMPTY sentinel.

/// A value storable in a [`crate::HashBag`].
///
/// # Contract
/// `from_bits(to_bits(x)) == x` for every valid `x`, and no valid `x` may
/// encode to [`BagItem::EMPTY_BITS`].
pub trait BagItem: Copy + Eq + Send + Sync + 'static {
    /// The slot bit pattern meaning "empty".
    const EMPTY_BITS: u64;

    /// Encodes the item into slot bits.
    fn to_bits(self) -> u64;

    /// Decodes slot bits back into an item.
    fn from_bits(bits: u64) -> Self;
}

/// Vertex ids. `u32::MAX` is reserved as the sentinel.
impl BagItem for u32 {
    const EMPTY_BITS: u64 = u64::MAX;

    #[inline(always)]
    fn to_bits(self) -> u64 {
        self as u64
    }

    #[inline(always)]
    fn from_bits(bits: u64) -> Self {
        bits as u32
    }
}

/// Packed pairs (e.g. `(vertex, source)` reachability pairs).
/// `u64::MAX` is reserved as the sentinel.
impl BagItem for u64 {
    const EMPTY_BITS: u64 = u64::MAX;

    #[inline(always)]
    fn to_bits(self) -> u64 {
        self
    }

    #[inline(always)]
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip() {
        for x in [0u32, 1, 12345, u32::MAX - 1] {
            assert_eq!(u32::from_bits(x.to_bits()), x);
            assert_ne!(x.to_bits(), u32::EMPTY_BITS);
        }
    }

    #[test]
    fn u64_roundtrip() {
        for x in [0u64, 1, u64::MAX - 1, 0xdead_beef_cafe] {
            assert_eq!(u64::from_bits(x.to_bits()), x);
            assert_ne!(x.to_bits(), u64::EMPTY_BITS);
        }
    }
}

//! Hash-bag tuning parameters (Tab. 1 of the paper).

/// Parameters of a [`crate::HashBag`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BagConfig {
    /// First chunk size λ. Paper default: 2¹⁰ (theory wants
    /// Ω((P + log n)·log n)).
    pub lambda: usize,
    /// Sample count σ that triggers a resize. Paper default: 50 (≈ log n).
    pub sigma: usize,
    /// Target load factor α at which a chunk is considered full.
    pub alpha: f64,
    /// Linear-probe limit κ before an insert forces a resize attempt.
    pub kappa: usize,
}

impl Default for BagConfig {
    fn default() -> Self {
        Self { lambda: 1 << 10, sigma: 50, alpha: 0.5, kappa: 64 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = BagConfig::default();
        assert_eq!(c.lambda, 1 << 10, "λ = 2^10 (Tab. 1)");
        assert_eq!(c.sigma, 50, "σ = 50 (Tab. 1)");
        assert!((c.alpha - 0.5).abs() < 1e-12, "α = 0.5 (Appendix A)");
    }
}

//! Parallel reductions over index ranges.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::atomic::atomic_max_u64;
use crate::parfor::par_range;

/// Parallel sum of `f(i)` over `0..n`.
pub fn par_sum_u64<F>(n: usize, f: F) -> u64
where
    F: Fn(usize) -> u64 + Sync,
{
    let total = AtomicU64::new(0);
    par_range(0..n, 2048, &|r| {
        let s: u64 = r.map(&f).sum();
        total.fetch_add(s, Ordering::Relaxed);
    });
    total.load(Ordering::Relaxed)
}

/// Parallel count of indices in `0..n` satisfying `pred`.
pub fn par_count<F>(n: usize, pred: F) -> usize
where
    F: Fn(usize) -> bool + Sync,
{
    let total = AtomicUsize::new(0);
    par_range(0..n, 2048, &|r| {
        let c = r.filter(|&i| pred(i)).count();
        total.fetch_add(c, Ordering::Relaxed);
    });
    total.load(Ordering::Relaxed)
}

/// Parallel max of `f(i)` over `0..n`; returns `None` for an empty range.
pub fn par_max<F>(n: usize, f: F) -> Option<u64>
where
    F: Fn(usize) -> u64 + Sync,
{
    if n == 0 {
        return None;
    }
    let best = AtomicU64::new(f(0));
    par_range(0..n, 2048, &|r| {
        if let Some(local) = r.map(&f).max() {
            atomic_max_u64(&best, local);
        }
    });
    Some(best.load(Ordering::Relaxed))
}

/// Generic associative parallel reduce of `f(i)` over `0..n` with identity
/// `id` and combiner `combine`.
pub fn par_reduce<T, F, C>(n: usize, id: T, f: F, combine: C) -> T
where
    T: Copy + Send + Sync,
    F: Fn(usize) -> T + Sync,
    C: Fn(T, T) -> T + Sync,
{
    const GRAIN: usize = 2048;
    let fold = |lo: usize, hi: usize| {
        let mut acc = id;
        for i in lo..hi {
            acc = combine(acc, f(i));
        }
        acc
    };
    let width = crate::pool::region_width().min(n.div_ceil(GRAIN).max(1));
    if width <= 1 {
        return fold(0, n);
    }
    // One contiguous segment per worker; combine left-to-right, which equals
    // any tree order because `combine` is associative by contract.
    let seg = n.div_ceil(width);
    let fold = &fold;
    std::thread::scope(|s| {
        let handles: Vec<_> = (1..width)
            .map(|w| {
                let (lo, hi) = (w * seg, ((w + 1) * seg).min(n));
                s.spawn(move || crate::pool::enter_region(|| fold(lo, hi)))
            })
            .collect();
        let mut acc = fold(0, seg.min(n));
        for h in handles {
            // analyze: allow(panic): deliberately propagates a worker panic to the caller
            acc = combine(acc, h.join().expect("reduce worker panicked"));
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_sequential() {
        let got = par_sum_u64(100_000, |i| i as u64);
        assert_eq!(got, (0..100_000u64).sum::<u64>());
    }

    #[test]
    fn sum_empty_is_zero() {
        assert_eq!(par_sum_u64(0, |_| 1), 0);
    }

    #[test]
    fn count_matches_filter() {
        let got = par_count(100_000, |i| i % 3 == 0);
        assert_eq!(got, (0..100_000).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn max_matches_sequential() {
        let f = |i: usize| crate::rng::hash64(i as u64) % 999_983;
        assert_eq!(par_max(50_000, f), (0..50_000).map(f).max());
    }

    #[test]
    fn max_empty_is_none() {
        assert_eq!(par_max(0, |i| i as u64), None);
    }

    #[test]
    fn reduce_min() {
        let f = |i: usize| crate::rng::hash64(i as u64 + 7);
        let got = par_reduce(10_000, u64::MAX, f, u64::min);
        assert_eq!(got, (0..10_000).map(f).min().unwrap());
    }

    #[test]
    fn reduce_empty_returns_identity() {
        let got = par_reduce(0, 42u64, |i| i as u64, u64::wrapping_add);
        assert_eq!(got, 42);
    }
}

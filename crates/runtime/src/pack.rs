//! Parallel compaction (pack).
//!
//! `pack` gathers the elements of a slice that satisfy a predicate into a
//! dense output vector, preserving order, using the standard
//! count → scan → write scheme (JáJá 1992). This is the primitive behind
//! the hash bag's `extract_all` (§3.3) and the edge-revisit frontier
//! generation of the GBBS-like baseline.

use crate::parfor::par_range;
use crate::scan::scan_exclusive;

const BLOCK: usize = 4096;

/// Returns the elements `x` of `data` with `keep(&x) == true`, in order.
pub fn pack<T, F>(data: &[T], keep: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> bool + Sync,
{
    pack_map(data, |x| if keep(x) { Some(*x) } else { None })
}

/// Returns the indices `i` with `keep(i) == true`, in increasing order.
pub fn pack_index<F>(n: usize, keep: F) -> Vec<usize>
where
    F: Fn(usize) -> bool + Sync,
{
    let nblocks = n.div_ceil(BLOCK).max(1);
    let mut counts = vec![0u64; nblocks];
    {
        let counts_ptr = SyncPtr(counts.as_mut_ptr());
        let keep = &keep;
        par_range(0..nblocks, 1, &|r| {
            for b in r {
                let lo = b * BLOCK;
                let hi = (lo + BLOCK).min(n);
                let c = (lo..hi).filter(|&i| keep(i)).count() as u64;
                // SAFETY: counts has nblocks slots and each task writes
                // only its own index b < nblocks; blocks are disjoint.
                unsafe { *counts_ptr.get().add(b) = c };
            }
        });
    }
    let total = scan_exclusive(&mut counts) as usize;
    let mut out: Vec<usize> = Vec::with_capacity(total);
    {
        let out_ptr = SyncPtr(out.as_mut_ptr());
        let counts = &counts;
        let keep = &keep;
        par_range(0..nblocks, 1, &|r| {
            for b in r {
                let lo = b * BLOCK;
                let hi = (lo + BLOCK).min(n);
                let mut pos = counts[b] as usize;
                for i in lo..hi {
                    if keep(i) {
                        // SAFETY: pos walks [counts[b], counts[b+1]), the
                        // slice of `out` owned exclusively by block b; the
                        // exclusive scan sized `out` to hold every kept
                        // index, so pos < total <= capacity.
                        unsafe { *out_ptr.get().add(pos) = i };
                        pos += 1;
                    }
                }
            }
        });
    }
    // SAFETY: the block writes above initialized exactly the first
    // `total` slots (the scan's grand total), with no gaps.
    unsafe { out.set_len(total) };
    out
}

/// Map-then-pack: applies `f` to each element and keeps the `Some` results,
/// in order. The workhorse behind [`pack`].
pub fn pack_map<T, U, F>(data: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Copy + Send + Sync,
    F: Fn(&T) -> Option<U> + Sync,
{
    let n = data.len();
    let nblocks = n.div_ceil(BLOCK).max(1);
    let mut counts = vec![0u64; nblocks];
    {
        let counts_ptr = SyncPtr(counts.as_mut_ptr());
        let f = &f;
        par_range(0..nblocks, 1, &|r| {
            for b in r {
                let lo = b * BLOCK;
                let hi = (lo + BLOCK).min(n);
                let c = data[lo..hi].iter().filter(|x| f(x).is_some()).count() as u64;
                // SAFETY: counts has nblocks slots and each task writes
                // only its own index b < nblocks; blocks are disjoint.
                unsafe { *counts_ptr.get().add(b) = c };
            }
        });
    }
    let total = scan_exclusive(&mut counts) as usize;
    let mut out: Vec<U> = Vec::with_capacity(total);
    {
        let out_ptr = SyncPtr(out.as_mut_ptr());
        let counts = &counts;
        let f = &f;
        par_range(0..nblocks, 1, &|r| {
            for b in r {
                let lo = b * BLOCK;
                let hi = (lo + BLOCK).min(n);
                let mut pos = counts[b] as usize;
                for x in &data[lo..hi] {
                    if let Some(v) = f(x) {
                        // SAFETY: pos walks [counts[b], counts[b+1]), the
                        // slice of `out` owned exclusively by block b; the
                        // exclusive scan sized `out` for every Some result.
                        unsafe { *out_ptr.get().add(pos) = v };
                        pos += 1;
                    }
                }
            }
        });
    }
    // SAFETY: the block writes above initialized exactly the first
    // `total` slots (the scan's grand total), with no gaps.
    unsafe { out.set_len(total) };
    out
}

struct SyncPtr<T>(*mut T);
// SAFETY: SyncPtr is a raw-pointer capability handed to disjoint-write
// parallel loops; every use site guarantees its own non-overlapping
// index range, so sharing the pointer across threads is sound.
unsafe impl<T> Sync for SyncPtr<T> {}
// SAFETY: see Sync above — the wrapped pointer targets plain memory and
// carries no thread affinity.
unsafe impl<T> Send for SyncPtr<T> {}
impl<T> SyncPtr<T> {
    #[inline(always)]
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_keeps_order() {
        let data: Vec<u32> = (0..50_000).collect();
        let evens = pack(&data, |x| x % 2 == 0);
        let expected: Vec<u32> = (0..50_000).filter(|x| x % 2 == 0).collect();
        assert_eq!(evens, expected);
    }

    #[test]
    fn pack_empty_input() {
        let data: Vec<u32> = vec![];
        assert!(pack(&data, |_| true).is_empty());
    }

    #[test]
    fn pack_none_kept() {
        let data: Vec<u32> = (0..10_000).collect();
        assert!(pack(&data, |_| false).is_empty());
    }

    #[test]
    fn pack_all_kept() {
        let data: Vec<u32> = (0..10_000).collect();
        assert_eq!(pack(&data, |_| true), data);
    }

    #[test]
    fn pack_index_matches_filter() {
        let keep = |i: usize| crate::rng::hash64(i as u64).is_multiple_of(3);
        let got = pack_index(30_000, keep);
        let expected: Vec<usize> = (0..30_000).filter(|&i| keep(i)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn pack_index_zero_len() {
        assert!(pack_index(0, |_| true).is_empty());
    }

    #[test]
    fn pack_map_transforms() {
        let data: Vec<u32> = (0..20_000).collect();
        let got = pack_map(&data, |&x| if x % 5 == 0 { Some(x * 2) } else { None });
        let expected: Vec<u32> = (0..20_000).filter(|x| x % 5 == 0).map(|x| x * 2).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn pack_block_boundary_sizes() {
        for n in [super::BLOCK - 1, super::BLOCK, super::BLOCK + 1, super::BLOCK * 2 + 17] {
            let data: Vec<u32> = (0..n as u32).collect();
            let got = pack(&data, |x| x % 7 == 0);
            let expected: Vec<u32> = (0..n as u32).filter(|x| x % 7 == 0).collect();
            assert_eq!(got, expected, "n={n}");
        }
    }
}

//! Deterministic pseudo-random utilities.
//!
//! The algorithms in this workspace need cheap, branch-free randomness in
//! hot loops (hash-bag slot selection, sampling decisions) and reproducible
//! randomness in setup code (vertex permutations, generators). Both are
//! served by the SplitMix64 stream and the `hash64` finalizer, which is the
//! standard murmur-style 64-bit bit-mixer: a bijective function with good
//! avalanche behaviour, so distinct inputs give effectively independent
//! outputs.

/// A 64-bit bit-mixing hash (splitmix64 finalizer). Bijective on `u64`.
#[inline(always)]
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A 32-bit hash derived from [`hash64`].
#[inline(always)]
pub fn hash32(x: u32) -> u32 {
    (hash64(x as u64) >> 32) as u32
}

/// Combines two 64-bit values into one hash. Used for SCC signature labels
/// (`hash(L[i], R1, R2)` in Alg. 1 line 12).
#[inline(always)]
pub fn hash_combine(a: u64, b: u64) -> u64 {
    hash64(a ^ b.rotate_left(31).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Deterministic splittable PRNG (SplitMix64).
///
/// Cheap enough for hot loops and fully reproducible from its seed. `split`
/// derives an independent stream, which lets parallel tasks own disjoint
/// generators without synchronization.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: hash64(seed ^ 0x5851_f42d_4c95_7f2d) }
    }

    /// Next 64 random bits.
    #[inline(always)]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        hash64(self.state)
    }

    /// Next 32 random bits.
    #[inline(always)]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    #[inline(always)]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift trick (Lemire); bias is negligible for our uses.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline(always)]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline(always)]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent generator; `self` advances.
    pub fn split(&mut self) -> Self {
        Self::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hash64_is_injective_on_small_domain() {
        let outputs: HashSet<u64> = (0u64..100_000).map(hash64).collect();
        assert_eq!(outputs.len(), 100_000);
    }

    #[test]
    fn hash64_differs_from_identity() {
        assert_ne!(hash64(0), 0);
        assert_ne!(hash64(1), 1);
    }

    #[test]
    fn hash_combine_is_order_sensitive() {
        assert_ne!(hash_combine(1, 2), hash_combine(2, 1));
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_streams_differ_by_seed() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(rng.next_below(10) < 10);
        }
    }

    #[test]
    fn next_below_covers_all_residues() {
        let mut rng = SplitMix64::new(9);
        let seen: HashSet<u64> = (0..1_000).map(|_| rng.next_below(8)).collect();
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_rate_is_roughly_p() {
        let mut rng = SplitMix64::new(11);
        let hits = (0..100_000).filter(|_| rng.next_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn split_produces_independent_stream() {
        let mut parent = SplitMix64::new(5);
        let mut child = parent.split();
        // The two streams should not be identical over a window.
        let same = (0..64).filter(|_| parent.next_u64() == child.next_u64()).count();
        assert!(same < 4);
    }
}

//! A single-threaded background worker for deferred maintenance jobs.
//!
//! The engine's catalog uses one to run store compaction (snapshot + WAL
//! rewrite) off the serving path: jobs are submitted from any thread and
//! executed in order on a dedicated named thread, so fsync-heavy work
//! never runs inside a query or update call. Dropping the worker closes
//! the queue and joins the thread, finishing every job already submitted —
//! a deterministic shutdown that tests rely on via [`Background::flush`].

use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Cached handle for the `pscc_background_queue_depth` gauge.
fn queue_depth_gauge() -> &'static Arc<pscc_telemetry::Gauge> {
    static GAUGE: OnceLock<Arc<pscc_telemetry::Gauge>> = OnceLock::new();
    GAUGE.get_or_init(|| pscc_telemetry::gauge("pscc_background_queue_depth"))
}

/// Cached handle for the `pscc_background_job_nanos` latency histogram.
fn job_latency_histogram() -> &'static Arc<pscc_telemetry::Histogram> {
    static HIST: OnceLock<Arc<pscc_telemetry::Histogram>> = OnceLock::new();
    HIST.get_or_init(|| pscc_telemetry::histogram("pscc_background_job_nanos"))
}

/// A named worker thread draining a FIFO job queue.
///
/// ```
/// use pscc_runtime::background::Background;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let worker = Background::spawn("demo");
/// let hits = Arc::new(AtomicUsize::new(0));
/// for _ in 0..4 {
///     let hits = hits.clone();
///     worker.submit(move || {
///         hits.fetch_add(1, Ordering::Relaxed);
///     });
/// }
/// worker.flush();
/// assert_eq!(hits.load(Ordering::Relaxed), 4);
/// ```
pub struct Background {
    tx: Option<Sender<Job>>,
    handle: Option<JoinHandle<()>>,
}

impl Background {
    /// Spawns the worker thread (named `name` for debuggers and panics).
    ///
    /// Panics only if the OS refuses to spawn a thread.
    pub fn spawn(name: &str) -> Background {
        let (tx, rx) = channel::<Job>();
        let thread_name = name.to_string();
        let handle = std::thread::Builder::new()
            .name(thread_name.clone())
            .spawn(move || {
                // Ends when every sender is dropped (worker shutdown). A
                // panicking job is contained — maintenance must outlive
                // one bad run — but announced so it is not silent.
                while let Ok(job) = rx.recv() {
                    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
                        pscc_telemetry::counter("pscc_background_job_panics_total").inc();
                        pscc_telemetry::log!(
                            Error,
                            "background worker {thread_name:?}: job panicked (contained)"
                        );
                    }
                }
            })
            // analyze: allow(panic): thread-spawn failure at construction is unrecoverable
            .expect("spawn background worker thread");
        Background { tx: Some(tx), handle: Some(handle) }
    }

    /// Enqueues `job`; returns `false` if the worker thread has died
    /// (only possible if the process is already unwinding in unusual
    /// ways — panicking jobs are contained), in which case `job` is
    /// dropped unrun.
    ///
    /// Telemetry: the pending-job count is visible as the
    /// `pscc_background_queue_depth` gauge, each job's execution time is
    /// recorded into `pscc_background_job_nanos`, and the job runs under
    /// the submitting thread's trace context, so spans it opens stay in
    /// the causal chain that deferred the work.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) -> bool {
        let ctx = pscc_telemetry::current_context();
        let depth = queue_depth_gauge();
        depth.inc();
        let wrapped = move || {
            queue_depth_gauge().dec();
            let timer = pscc_telemetry::enabled().then(pscc_telemetry::Timer::start);
            pscc_telemetry::with_context(ctx, job);
            if let Some(t) = timer {
                job_latency_histogram().record(t.elapsed());
            }
        };
        let sent = self
            .tx
            .as_ref()
            // analyze: allow(panic): tx is Some from construction until Drop takes it
            .expect("worker alive until drop")
            .send(Box::new(wrapped))
            .is_ok();
        if !sent {
            depth.dec();
        }
        sent
    }

    /// Blocks until every job submitted before this call has finished
    /// (panicked jobs count as finished). Returns `false` (immediately)
    /// if the worker thread has died.
    pub fn flush(&self) -> bool {
        let (done_tx, done_rx) = channel::<()>();
        if !self.submit(move || {
            let _ = done_tx.send(());
        }) {
            return false;
        }
        done_rx.recv().is_ok()
    }
}

impl Drop for Background {
    fn drop(&mut self) {
        // Close the queue, then wait for in-flight jobs to finish.
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn jobs_run_in_submission_order() {
        let w = Background::spawn("bg-test-order");
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        for i in 0..16 {
            let log = log.clone();
            w.submit(move || log.lock().unwrap().push(i));
        }
        w.flush();
        assert_eq!(*log.lock().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn drop_finishes_queued_jobs() {
        let count = Arc::new(AtomicUsize::new(0));
        {
            let w = Background::spawn("bg-test-drop");
            for _ in 0..8 {
                let count = count.clone();
                w.submit(move || {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop joins
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn worker_survives_a_panicking_job() {
        let w = Background::spawn("bg-test-panic");
        let after = Arc::new(AtomicUsize::new(0));
        w.submit(|| panic!("job panics (contained)"));
        let counter = after.clone();
        w.submit(move || {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        // The panic is contained: the queue keeps draining and flush
        // still round-trips.
        assert!(w.flush());
        assert_eq!(after.load(Ordering::Relaxed), 1);
    }
}

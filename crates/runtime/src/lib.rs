//! # pscc-runtime
//!
//! Fork-join runtime and parallel primitives used throughout the
//! parallel-scc workspace. The paper ("Parallel Strong Connectivity Based on
//! Faster Reachability", SIGMOD 2023) assumes the binary fork-join
//! work-stealing model of ParlayLib; this crate provides an equivalent
//! blocked-loop model on std scoped threads with dynamic block claiming
//! (no external dependencies), plus the parallel building blocks the
//! algorithms need:
//!
//! * blocked [`par_for`] / [`par_range`] loops with explicit granularity
//!   (the classic *horizontal* granularity control of §3.1),
//! * [`scan`] (exclusive prefix sums), [`fn@pack`] / [`pack_index`]
//!   (parallel compaction, used by the hash bag's `extract_all`),
//! * [`reduce`]-style combinators,
//! * a deterministic splittable PRNG ([`rng::SplitMix64`]) and the
//!   bit-mixing hash [`rng::hash64`] used for sampling and signatures,
//! * [`permute::random_permutation`] for the BGSS prefix-doubling batches,
//! * atomic helpers ([`atomic::AtomicBits`], [`atomic::atomic_max_u64`]),
//! * [`pool::with_threads`] for the processor-count sweeps of Fig. 7/8,
//! * [`PhaseTimer`] for the Fig. 9 breakdown (re-exported from
//!   `pscc_telemetry`, which owns the workspace's timing primitives),
//! * [`background::Background`], a named single-threaded worker for
//!   deferred maintenance (the engine's store compaction runs on one).
//!
//! The parallel primitives are telemetry-aware: `par_range` workers and
//! `Background` jobs propagate the submitting thread's
//! [`pscc_telemetry::TraceContext`], and expose a live-worker gauge and a
//! job-latency histogram through the global metric registry.

pub mod atomic;
pub mod background;
pub mod pack;
pub mod parfor;
pub mod permute;
pub mod pool;
pub mod reduce;
pub mod rng;
pub mod scan;
pub mod sort;
#[deprecated(note = "use `pscc_runtime::{Timer, PhaseTimer}` or `pscc_telemetry::time`")]
pub mod timer;

pub use atomic::{atomic_max_u32, atomic_max_u64, atomic_min_u32, AtomicBits};
pub use background::Background;
pub use pack::{pack, pack_index, pack_map};
pub use parfor::{par_for, par_for_grain, par_range, DEFAULT_GRAIN};
pub use permute::random_permutation;
pub use pool::{num_workers, with_threads};
pub use pscc_telemetry::{PhaseTimer, Timer};
pub use reduce::{par_count, par_max, par_reduce, par_sum_u64};
pub use rng::{hash32, hash64, SplitMix64};
pub use scan::scan_exclusive;
pub use sort::{par_sort_unstable, par_sort_unstable_by_key};

//! Deprecated location of the timing primitives.
//!
//! [`Timer`] and [`PhaseTimer`] moved to `pscc_telemetry::time` so the
//! workspace has exactly one monotonic-clock stopwatch implementation,
//! shared by the algorithms and the telemetry subsystem. This module
//! re-exports them for source compatibility; import them from the crate
//! root (`pscc_runtime::{Timer, PhaseTimer}`) or from `pscc_telemetry`
//! instead.

pub use pscc_telemetry::{PhaseTimer, Timer};

//! Thread-pool control.
//!
//! The evaluation (Fig. 7, Fig. 8, Fig. 11) varies the number of processors
//! from 1 to the machine width. [`with_threads`] runs a closure inside a
//! dedicated work-stealing pool of the requested width so a benchmark can
//! sweep processor counts within one process.

/// Number of worker threads in the current pool.
pub fn num_workers() -> usize {
    rayon::current_num_threads()
}

/// Number of logical CPUs on this machine.
pub fn available_parallelism() -> usize {
    num_cpus::get()
}

/// Runs `f` on a dedicated pool with `threads` workers.
///
/// All `rayon::join`-based primitives in this workspace inherit the pool of
/// the calling context, so everything inside `f` is limited to `threads`
/// processors — exactly what the scalability experiments need.
pub fn with_threads<R, F>(threads: usize, f: F) -> R
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("failed to build thread pool");
    pool.install(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_threads_limits_pool_width() {
        let seen = with_threads(2, num_workers);
        assert_eq!(seen, 2);
    }

    #[test]
    fn with_threads_one_is_sequentialish() {
        let seen = with_threads(1, num_workers);
        assert_eq!(seen, 1);
    }

    #[test]
    fn with_threads_zero_clamps_to_one() {
        let seen = with_threads(0, num_workers);
        assert_eq!(seen, 1);
    }

    #[test]
    fn with_threads_returns_closure_value() {
        let v = with_threads(2, || crate::par_sum_u64(1000, |i| i as u64));
        assert_eq!(v, (0..1000u64).sum::<u64>());
    }

    #[test]
    fn available_parallelism_positive() {
        assert!(available_parallelism() >= 1);
    }
}

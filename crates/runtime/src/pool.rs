//! Thread-width control.
//!
//! The evaluation (Fig. 7, Fig. 8, Fig. 11) varies the number of processors
//! from 1 to the machine width. The workspace's parallel primitives spawn
//! scoped worker threads per call (no external work-stealing runtime), so
//! "pool width" here is a per-thread *parallelism budget*: [`with_threads`]
//! overrides it for a closure — including oversubscription beyond the
//! physical core count, which the stress tests rely on to force real
//! interleavings on narrow CI hosts.

use std::cell::Cell;

thread_local! {
    /// Width override installed by [`with_threads`]; 0 = unset.
    static WIDTH_OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// True while this thread is executing inside a parallel region; nested
    /// parallel calls then run sequentially instead of spawning again.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Number of workers a parallel primitive may use from this context.
pub fn num_workers() -> usize {
    let o = WIDTH_OVERRIDE.with(Cell::get);
    if o != 0 {
        o
    } else {
        available_parallelism()
    }
}

/// Number of logical CPUs on this machine.
///
/// Cached: `std::thread::available_parallelism` re-reads cgroup quota files
/// on every call (~10µs), which dominated tight parallel loops.
pub fn available_parallelism() -> usize {
    use std::sync::OnceLock;
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Runs `f` with the parallelism budget set to `threads` (clamped to ≥ 1).
///
/// Every parallel primitive in this workspace consults the calling thread's
/// budget, so everything inside `f` is limited to `threads` workers —
/// exactly what the scalability experiments need. Unlike a real pool there
/// is no thread reuse across calls; `threads` may exceed the physical core
/// count to oversubscribe.
pub fn with_threads<R, F>(threads: usize, f: F) -> R
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            WIDTH_OVERRIDE.with(|w| w.set(self.0));
        }
    }
    let prev = WIDTH_OVERRIDE.with(|w| w.replace(threads.max(1)));
    let _restore = Restore(prev);
    f()
}

/// Width a new parallel region started on this thread should use: the
/// budget, except that regions nested inside a worker stay sequential.
pub(crate) fn region_width() -> usize {
    if IN_PARALLEL.with(Cell::get) {
        1
    } else {
        num_workers()
    }
}

/// Marks this thread as executing inside a parallel region for the duration
/// of `f` (so nested primitives do not spawn again).
pub(crate) fn enter_region<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_PARALLEL.with(|p| p.set(self.0));
        }
    }
    let prev = IN_PARALLEL.with(|p| p.replace(true));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_threads_limits_pool_width() {
        let seen = with_threads(2, num_workers);
        assert_eq!(seen, 2);
    }

    #[test]
    fn with_threads_one_is_sequentialish() {
        let seen = with_threads(1, num_workers);
        assert_eq!(seen, 1);
    }

    #[test]
    fn with_threads_zero_clamps_to_one() {
        let seen = with_threads(0, num_workers);
        assert_eq!(seen, 1);
    }

    #[test]
    fn with_threads_returns_closure_value() {
        let v = with_threads(2, || crate::par_sum_u64(1000, |i| i as u64));
        assert_eq!(v, (0..1000u64).sum::<u64>());
    }

    #[test]
    fn with_threads_restores_previous_width() {
        let outer = num_workers();
        with_threads(3, || {
            assert_eq!(num_workers(), 3);
            with_threads(5, || assert_eq!(num_workers(), 5));
            assert_eq!(num_workers(), 3);
        });
        assert_eq!(num_workers(), outer);
    }

    #[test]
    fn available_parallelism_positive() {
        assert!(available_parallelism() >= 1);
    }
}

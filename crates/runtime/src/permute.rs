//! Parallel random permutations.
//!
//! The BGSS SCC / LE-list algorithms (Alg. 1 and Alg. 5) first randomly
//! permute the vertex set and then process exponentially growing prefixes.
//! We generate a permutation by sorting indices by a keyed hash — a
//! parallel, deterministic equivalent of a Fisher–Yates shuffle.

use crate::rng::hash64;

/// Returns a pseudo-random permutation of `0..n` determined by `seed`.
pub fn random_permutation(n: usize, seed: u64) -> Vec<u32> {
    assert!(n <= u32::MAX as usize, "vertex ids are u32");
    let mut keyed: Vec<(u64, u32)> = (0..n as u32)
        .map(|i| (hash64(seed ^ ((i as u64) << 1 | 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)), i))
        .collect();
    // Parallel sort by key; ties (astronomically unlikely) break by id.
    crate::sort::par_sort_unstable(&mut keyed[..]);
    keyed.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_a_permutation() {
        let p = random_permutation(10_000, 1);
        let mut seen = vec![false; 10_000];
        for &x in &p {
            assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn deterministic_for_seed() {
        assert_eq!(random_permutation(1000, 7), random_permutation(1000, 7));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(random_permutation(1000, 1), random_permutation(1000, 2));
    }

    #[test]
    fn not_identity_for_nontrivial_n() {
        let p = random_permutation(1000, 3);
        let identity: Vec<u32> = (0..1000).collect();
        assert_ne!(p, identity);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(random_permutation(0, 1).is_empty());
        assert_eq!(random_permutation(1, 1), vec![0]);
    }

    #[test]
    fn permutation_is_roughly_uniform() {
        // The average displacement of elements should be ~n/3 for a uniform
        // permutation; check it is at least n/6.
        let n = 10_000usize;
        let p = random_permutation(n, 11);
        let total_disp: u64 =
            p.iter().enumerate().map(|(i, &x)| (i as i64 - x as i64).unsigned_abs()).sum();
        let avg = total_disp as f64 / n as f64;
        assert!(avg > n as f64 / 6.0, "avg displacement {avg}");
    }
}

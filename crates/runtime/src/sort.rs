//! Parallel unstable sorting for `Copy` element types.
//!
//! The workspace sorts edge lists and keyed index vectors (both small
//! `Copy` tuples) on hot paths — CSR construction, random permutations,
//! and the LE-lists candidate pass. This module provides a chunked
//! merge sort: the slice is cut into one chunk per worker, chunks are
//! sorted with `slice::sort_unstable_by_key` on scoped threads, and sorted
//! runs are merged through a scratch buffer (ping-pong passes, parallel
//! across run pairs).

use crate::pool;

/// Minimum length worth parallelizing; below this the std sort wins.
const SEQ_CUTOFF: usize = 1 << 13;

/// Sorts `v` in parallel (unstable order for equal elements).
pub fn par_sort_unstable<T: Ord + Copy + Send + Sync>(v: &mut [T]) {
    par_sort_unstable_by_key(v, |&x| x);
}

/// Sorts `v` in parallel by the key extracted by `key`.
pub fn par_sort_unstable_by_key<T, K, F>(v: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    let n = v.len();
    let width = pool::region_width();
    if width <= 1 || n < SEQ_CUTOFF {
        v.sort_unstable_by_key(|t| key(t));
        return;
    }
    let chunk = n.div_ceil(width);
    let key = &key;
    std::thread::scope(|s| {
        for part in v.chunks_mut(chunk) {
            s.spawn(move || pool::enter_region(|| part.sort_unstable_by_key(|t| key(t))));
        }
    });

    // Ping-pong merge passes over runs of doubling length.
    let mut buf: Vec<T> = v.to_vec();
    let mut in_v = true;
    let mut run = chunk;
    while run < n {
        if in_v {
            merge_pass(v, &mut buf, run, key);
        } else {
            merge_pass(&buf, v, run, key);
        }
        in_v = !in_v;
        run *= 2;
    }
    if !in_v {
        v.copy_from_slice(&buf);
    }
}

/// Merges adjacent sorted runs of length `run` from `src` into `dst`,
/// one pair per scoped worker.
fn merge_pass<T, K, F>(src: &[T], dst: &mut [T], run: usize, key: &F)
where
    T: Copy + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    let n = src.len();
    std::thread::scope(|s| {
        let mut rest = dst;
        let mut lo = 0;
        while lo < n {
            let mid = (lo + run).min(n);
            let hi = (lo + 2 * run).min(n);
            let (out, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            let (a, b) = (&src[lo..mid], &src[mid..hi]);
            s.spawn(move || pool::enter_region(|| merge_into(a, b, out, key)));
            lo = hi;
        }
    });
}

/// Standard two-way merge of sorted `a` and `b` into `out`.
fn merge_into<T, K, F>(a: &[T], b: &[T], out: &mut [T], key: &F)
where
    T: Copy,
    K: Ord,
    F: Fn(&T) -> K,
{
    debug_assert_eq!(a.len() + b.len(), out.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_a = j >= b.len() || (i < a.len() && key(&a[i]) <= key(&b[j]));
        if take_a {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::hash64;

    fn random_vec(n: usize, seed: u64) -> Vec<u64> {
        (0..n as u64).map(|i| hash64(i ^ seed.wrapping_mul(0x9e37))).collect()
    }

    #[test]
    fn sorts_like_std() {
        for n in [0usize, 1, 2, 100, SEQ_CUTOFF + 17] {
            let mut a = random_vec(n, n as u64);
            let mut b = a.clone();
            par_sort_unstable(&mut a);
            b.sort_unstable();
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn sorts_under_explicit_width() {
        crate::with_threads(4, || {
            let mut a = random_vec(100_000, 3);
            let mut b = a.clone();
            par_sort_unstable(&mut a);
            b.sort_unstable();
            assert_eq!(a, b);
        });
    }

    #[test]
    fn by_key_orders_by_projection() {
        crate::with_threads(3, || {
            let mut a: Vec<(u64, u32)> =
                random_vec(50_000, 7).into_iter().map(|x| (x, (x % 97) as u32)).collect();
            par_sort_unstable_by_key(&mut a, |&(_, k)| k);
            assert!(a.windows(2).all(|w| w[0].1 <= w[1].1));
        });
    }

    #[test]
    fn already_sorted_and_reverse() {
        crate::with_threads(5, || {
            let mut a: Vec<u64> = (0..40_000).collect();
            par_sort_unstable(&mut a);
            assert!(a.windows(2).all(|w| w[0] <= w[1]));
            let mut d: Vec<u64> = (0..40_000).rev().collect();
            par_sort_unstable(&mut d);
            assert!(d.windows(2).all(|w| w[0] <= w[1]));
        });
    }

    #[test]
    fn merge_into_handles_skew() {
        let a = [1u32, 2, 3, 10];
        let b = [4u32];
        let mut out = [0u32; 5];
        merge_into(&a, &b, &mut out, &|&x| x);
        assert_eq!(out, [1, 2, 3, 4, 10]);
    }
}

//! Blocked parallel for-loops with explicit granularity control.
//!
//! These are the "horizontal granularity control" primitives of §3.1: the
//! index range is cut into blocks of at most `grain` indices, and scoped
//! worker threads claim blocks from a shared atomic cursor until the range
//! is exhausted. Dynamic claiming gives the same load balance as the
//! classic divide-and-conquer fork-join without requiring a work-stealing
//! runtime; nested parallel calls inside a block run sequentially.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::pool;

/// Default sequential base-case size. The paper notes (§3.2) that a base
/// case of around a thousand operations is enough to hide scheduling
/// overhead; 1024 matches that guidance.
pub const DEFAULT_GRAIN: usize = 1024;

/// Runs `f(i)` for every `i` in `0..n` in parallel with the default grain.
pub fn par_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    par_range(0..n, DEFAULT_GRAIN, &|r: Range<usize>| {
        for i in r {
            f(i);
        }
    });
}

/// Runs `f` over disjoint subranges of `range` in parallel.
///
/// Each invocation of `f` receives a contiguous subrange of at most `grain`
/// indices (except that a `grain` of zero is treated as one). The union of
/// all subranges is exactly `range` and they never overlap, so `f` may
/// freely write to per-index slots of a shared structure.
pub fn par_range<F>(range: Range<usize>, grain: usize, f: &F)
where
    F: Fn(Range<usize>) + Sync,
{
    let grain = grain.max(1);
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return;
    }
    let blocks = len.div_ceil(grain);
    let width = pool::region_width().min(blocks);
    let block_range = |b: usize| {
        let lo = range.start + b * grain;
        lo..(lo + grain).min(range.end)
    };
    if width <= 1 {
        for b in 0..blocks {
            f(block_range(b));
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    // Telemetry: workers inherit the spawning thread's trace context (so
    // spans opened inside `f` stay in the caller's causal chain) and are
    // counted in the live-worker gauge for the duration of the region.
    let telemetry_on = pscc_telemetry::enabled();
    let ctx = if telemetry_on { pscc_telemetry::current_context() } else { None };
    let work = || {
        let _active = telemetry_on.then(|| active_workers_gauge().inc_scoped());
        pscc_telemetry::with_context(ctx, || {
            pool::enter_region(|| loop {
                let b = cursor.fetch_add(1, Ordering::Relaxed);
                if b >= blocks {
                    break;
                }
                f(block_range(b));
            })
        })
    };
    std::thread::scope(|s| {
        for _ in 1..width {
            s.spawn(work);
        }
        work();
    });
}

/// Cached handle for the `pscc_pool_active_workers` gauge (the registry
/// lookup takes a lock, so hot loops must not resolve the name per call).
fn active_workers_gauge() -> &'static std::sync::Arc<pscc_telemetry::Gauge> {
    static GAUGE: std::sync::OnceLock<std::sync::Arc<pscc_telemetry::Gauge>> =
        std::sync::OnceLock::new();
    GAUGE.get_or_init(|| pscc_telemetry::gauge("pscc_pool_active_workers"))
}

/// Runs `f(i)` for every `i` in `0..n` in parallel with a custom grain.
pub fn par_for_grain<F>(n: usize, grain: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    par_range(0..n, grain, &|r: Range<usize>| {
        for i in r {
            f(i);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn par_for_touches_every_index_exactly_once() {
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_empty_range_is_noop() {
        let count = AtomicUsize::new(0);
        par_for(0, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn par_range_subranges_partition_the_input() {
        let total = AtomicU64::new(0);
        let calls = AtomicUsize::new(0);
        par_range(7..10_007, 64, &|r| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert!(r.end - r.start <= 64);
            total.fetch_add(r.map(|i| i as u64).sum::<u64>(), Ordering::Relaxed);
        });
        let expected: u64 = (7u64..10_007).sum();
        assert_eq!(total.load(Ordering::Relaxed), expected);
        assert!(calls.load(Ordering::Relaxed) >= (10_000 / 64));
    }

    #[test]
    fn par_range_grain_zero_behaves_like_grain_one() {
        let count = AtomicUsize::new(0);
        par_range(0..17, 0, &|r| {
            assert_eq!(r.end - r.start, 1);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn par_for_grain_respects_large_grain() {
        // With grain >= n the loop must degrade to a single sequential call.
        let n = 100;
        let sum = AtomicU64::new(0);
        par_for_grain(n, n * 2, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (0..n as u64).sum::<u64>());
    }
}

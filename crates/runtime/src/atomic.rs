//! Atomic helpers: CAS-loop max/min and a concurrent bit vector.
//!
//! The paper's computational model (§2) assumes a unit-cost
//! `compare_and_swap`; everything here is built from that primitive.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::parfor::par_range;

/// Atomically sets `a = max(a, v)`. Returns `true` if `a` was updated.
#[inline]
pub fn atomic_max_u64(a: &AtomicU64, v: u64) -> bool {
    let mut cur = a.load(Ordering::Relaxed);
    while v > cur {
        match a.compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

/// Atomically sets `a = max(a, v)`. Returns `true` if `a` was updated.
#[inline]
pub fn atomic_max_u32(a: &AtomicU32, v: u32) -> bool {
    let mut cur = a.load(Ordering::Relaxed);
    while v > cur {
        match a.compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

/// Atomically sets `a = min(a, v)`. Returns `true` if `a` was updated.
#[inline]
pub fn atomic_min_u32(a: &AtomicU32, v: u32) -> bool {
    let mut cur = a.load(Ordering::Relaxed);
    while v < cur {
        match a.compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

/// Atomically XORs `v` into `a` (used for commutative signature combining).
#[inline]
pub fn atomic_xor_u64(a: &AtomicU64, v: u64) {
    a.fetch_xor(v, Ordering::Relaxed);
}

/// A fixed-size concurrent bit vector.
///
/// This is the `visit[·]` array of Alg. 3: `test_and_set` is the
/// `compare_and_swap(&visit[u], false, true)` idiom that ensures each vertex
/// enters a frontier exactly once.
pub struct AtomicBits {
    words: Box<[AtomicU64]>,
    len: usize,
}

impl AtomicBits {
    /// Creates a bit vector of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        let nwords = len.div_ceil(64);
        let words = (0..nwords).map(|_| AtomicU64::new(0)).collect();
        Self { words, len }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = self.words[i >> 6].load(Ordering::Relaxed);
        (w >> (i & 63)) & 1 != 0
    }

    /// Sets bit `i` (idempotent).
    #[inline]
    pub fn set(&self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6].fetch_or(1 << (i & 63), Ordering::Relaxed);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6].fetch_and(!(1 << (i & 63)), Ordering::Relaxed);
    }

    /// Atomically sets bit `i`; returns `true` iff this call flipped it from
    /// clear to set (i.e. the caller "won" the vertex).
    #[inline]
    pub fn test_and_set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i & 63);
        let prev = self.words[i >> 6].fetch_or(mask, Ordering::Relaxed);
        prev & mask == 0
    }

    /// Clears every bit (parallel).
    pub fn clear_all(&self) {
        par_range(0..self.words.len(), 4096, &|r| {
            for w in &self.words[r] {
                w.store(0, Ordering::Relaxed);
            }
        });
    }

    /// Number of set bits (parallel).
    pub fn count_ones(&self) -> usize {
        use std::sync::atomic::AtomicUsize;
        let total = AtomicUsize::new(0);
        par_range(0..self.words.len(), 4096, &|r| {
            let s: usize =
                self.words[r].iter().map(|w| w.load(Ordering::Relaxed).count_ones() as usize).sum();
            total.fetch_add(s, Ordering::Relaxed);
        });
        total.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parfor::par_for;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn max_u64_updates_monotonically() {
        let a = AtomicU64::new(5);
        assert!(atomic_max_u64(&a, 10));
        assert!(!atomic_max_u64(&a, 7));
        assert_eq!(a.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn max_u64_equal_value_is_not_update() {
        let a = AtomicU64::new(10);
        assert!(!atomic_max_u64(&a, 10));
    }

    #[test]
    fn min_u32_updates_monotonically() {
        let a = AtomicU32::new(100);
        assert!(atomic_min_u32(&a, 50));
        assert!(!atomic_min_u32(&a, 60));
        assert_eq!(a.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn concurrent_max_finds_global_max() {
        let a = AtomicU64::new(0);
        par_for(100_000, |i| {
            atomic_max_u64(&a, crate::rng::hash64(i as u64) % 1_000_000);
        });
        let expected = (0..100_000u64).map(|i| crate::rng::hash64(i) % 1_000_000).max().unwrap();
        assert_eq!(a.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn bits_set_get_clear() {
        let bits = AtomicBits::new(130);
        assert!(!bits.get(129));
        bits.set(129);
        assert!(bits.get(129));
        bits.clear(129);
        assert!(!bits.get(129));
    }

    #[test]
    fn bits_test_and_set_wins_once() {
        let bits = AtomicBits::new(1000);
        let wins = AtomicUsize::new(0);
        par_for(10_000, |i| {
            if bits.test_and_set(i % 1000) {
                wins.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 1000);
        assert_eq!(bits.count_ones(), 1000);
    }

    #[test]
    fn bits_clear_all_resets() {
        let bits = AtomicBits::new(500);
        for i in 0..500 {
            bits.set(i);
        }
        assert_eq!(bits.count_ones(), 500);
        bits.clear_all();
        assert_eq!(bits.count_ones(), 0);
    }

    #[test]
    fn bits_word_boundaries() {
        let bits = AtomicBits::new(64);
        bits.set(63);
        assert!(bits.get(63));
        assert_eq!(bits.count_ones(), 1);
    }

    #[test]
    fn bits_empty() {
        let bits = AtomicBits::new(0);
        assert!(bits.is_empty());
        assert_eq!(bits.count_ones(), 0);
    }
}

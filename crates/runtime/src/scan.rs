//! Parallel exclusive prefix sums (scan).
//!
//! Classic two-pass blocked scan: per-block sums, a sequential scan over the
//! (few) block sums, then a parallel pass writing block-local prefixes. Used
//! by `pack` and the frontier compaction throughout the workspace.

use crate::parfor::par_range;

const BLOCK: usize = 4096;

/// In-place exclusive prefix sum over `data`; returns the grand total.
///
/// After the call, `data[i]` holds the sum of the original
/// `data[0..i]`, and the returned value is the sum of all elements.
pub fn scan_exclusive(data: &mut [u64]) -> u64 {
    let n = data.len();
    if n == 0 {
        return 0;
    }
    if n <= BLOCK {
        let mut acc = 0u64;
        for x in data.iter_mut() {
            let v = *x;
            *x = acc;
            acc += v;
        }
        return acc;
    }
    let nblocks = n.div_ceil(BLOCK);
    let mut block_sums = vec![0u64; nblocks];

    // Pass 1: per-block totals.
    {
        let sums_ptr = SyncPtr(block_sums.as_mut_ptr());
        let data_ref = &*data;
        par_range(0..nblocks, 1, &|r| {
            for b in r {
                let lo = b * BLOCK;
                let hi = (lo + BLOCK).min(n);
                let s: u64 = data_ref[lo..hi].iter().sum();
                // SAFETY: block_sums has nblocks slots and each task
                // writes only its own index b < nblocks, exactly once.
                unsafe { *sums_ptr.get().add(b) = s };
            }
        });
    }

    // Sequential scan over block sums (nblocks is small).
    let mut acc = 0u64;
    for s in block_sums.iter_mut() {
        let v = *s;
        *s = acc;
        acc += v;
    }
    let total = acc;

    // Pass 2: block-local exclusive scans offset by the block prefix.
    {
        let data_ptr = SyncPtr(data.as_mut_ptr());
        let sums = &block_sums;
        par_range(0..nblocks, 1, &|r| {
            for b in r {
                let lo = b * BLOCK;
                let hi = (lo + BLOCK).min(n);
                let mut acc = sums[b];
                for i in lo..hi {
                    // SAFETY: i stays inside [lo, hi) ⊆ [0, n), block b's
                    // exclusive slice of data; blocks never overlap.
                    unsafe {
                        let p = data_ptr.get().add(i);
                        let v = *p;
                        *p = acc;
                        acc += v;
                    }
                }
            }
        });
    }
    total
}

/// A raw pointer wrapper asserting cross-thread use is safe because tasks
/// write disjoint indices.
struct SyncPtr<T>(*mut T);
// SAFETY: SyncPtr is only handed to parallel loops whose tasks touch
// disjoint index ranges (documented at each use), so aliased mutation
// never occurs.
unsafe impl<T> Sync for SyncPtr<T> {}
// SAFETY: see Sync above — the pointer targets plain memory with no
// thread affinity.
unsafe impl<T> Send for SyncPtr<T> {}
impl<T> SyncPtr<T> {
    #[inline(always)]
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_scan(input: &[u64]) -> (Vec<u64>, u64) {
        let mut out = Vec::with_capacity(input.len());
        let mut acc = 0;
        for &x in input {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn scan_empty() {
        let mut data: Vec<u64> = vec![];
        assert_eq!(scan_exclusive(&mut data), 0);
    }

    #[test]
    fn scan_single() {
        let mut data = vec![42u64];
        assert_eq!(scan_exclusive(&mut data), 42);
        assert_eq!(data, vec![0]);
    }

    #[test]
    fn scan_small_matches_reference() {
        let input: Vec<u64> = (0..100).map(|i| (i * 7 + 3) % 13).collect();
        let (expected, total) = reference_scan(&input);
        let mut data = input;
        assert_eq!(scan_exclusive(&mut data), total);
        assert_eq!(data, expected);
    }

    #[test]
    fn scan_large_matches_reference() {
        let input: Vec<u64> = (0..100_000u64).map(crate::rng::hash64).map(|x| x % 1000).collect();
        let (expected, total) = reference_scan(&input);
        let mut data = input;
        assert_eq!(scan_exclusive(&mut data), total);
        assert_eq!(data, expected);
    }

    #[test]
    fn scan_exact_block_boundary() {
        let n = super::BLOCK * 3;
        let input: Vec<u64> = vec![1; n];
        let mut data = input.clone();
        assert_eq!(scan_exclusive(&mut data), n as u64);
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u64);
        }
    }

    #[test]
    fn scan_block_plus_one() {
        let n = super::BLOCK + 1;
        let mut data = vec![2u64; n];
        assert_eq!(scan_exclusive(&mut data), 2 * n as u64);
        assert_eq!(data[n - 1], 2 * (n as u64 - 1));
    }
}

//! # parallel-scc
//!
//! A Rust reproduction of *"Parallel Strong Connectivity Based on Faster
//! Reachability"* (Wang, Dong, Gu, Sun — SIGMOD 2023): parallel strongly
//! connected components via the BGSS algorithm with **vertical granularity
//! control** reachability searches and the **parallel hash bag**, plus the
//! paper's two companion applications (graph connectivity and
//! least-element lists) and every baseline it evaluates against.
//!
//! ## Quick start
//!
//! ```
//! use parallel_scc::prelude::*;
//!
//! // A 4-cycle plus a tail: {0,1,2,3} is one SCC, 4 is a singleton.
//! let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (3, 4)]);
//! let result = parallel_scc(&g, &SccConfig::default());
//! assert_eq!(result.num_sccs, 2);
//! assert_eq!(result.largest_scc, 4);
//! assert_eq!(result.labels[0], result.labels[3]);
//! assert_ne!(result.labels[0], result.labels[4]);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`runtime`] | `pscc-runtime` | fork-join primitives, scan/pack, PRNG, atomics |
//! | [`graph`] | `pscc-graph` | CSR graphs, builders, I/O, generators |
//! | [`bag`] | `pscc-bag` | the parallel hash bag (§3.3) |
//! | [`table`] | `pscc-table` | phase-concurrent pair table + §4.5 heuristic |
//! | [`scc`] | `pscc-core` | VGC reachability + BGSS SCC (the contribution) |
//! | [`baselines`] | `pscc-baselines` | Tarjan, Kosaraju, GBBS-like, Multi-step, FW-BW |
//! | [`cc`] | `pscc-cc` | LDD-UF-JTB connectivity (§5.1) |
//! | [`lelists`] | `pscc-lelists` | BGSS least-element lists (§5.2) |
//! | [`apps`] | `pscc-apps` | condensation, topological sort, 2-SAT |
//! | [`engine`] | `pscc-engine` | batched reachability queries over the condensation DAG |
//! | [`store`] | `pscc-store` | durable snapshots + write-ahead delta log with crash recovery |
//! | [`telemetry`] | `pscc-telemetry` | zero-dependency metrics, tracing spans, exposition, logging |
//! | [`server`] | `pscc-server` | TCP front end with batch-coalescing admission queue |
//!
//! ## Serving reachability queries
//!
//! The [`engine`] module answers `u ⇝ v` queries over any digraph after a
//! one-time index build (SCC → condensation → descendant summaries), and
//! registered graphs accept batched edge updates ([`engine::Delta`])
//! with incremental index repair:
//!
//! ```
//! use parallel_scc::prelude::*;
//!
//! let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
//! let index = ReachIndex::build(&g);
//! let batch = QueryBatch::new(&index);
//! assert_eq!(batch.answer(&[(0, 4), (4, 0), (1, 0)]), vec![true, false, true]);
//!
//! let catalog = Catalog::new();
//! catalog.insert("g", g);
//! let mut delta = Delta::new();
//! delta.insert(4, 2); // close 2 -> 3 -> 4 back into a cycle
//! catalog.apply_delta("g", &delta).unwrap();
//! assert_eq!(catalog.reaches("g", 4, 0), Some(true));
//! ```
//!
//! Registered graphs can also be made **durable**
//! ([`engine::Catalog::persist_to`]): deltas are then write-ahead logged
//! and fsynced before they return, and [`engine::Catalog::open`] recovers
//! the whole catalog — newest valid snapshot plus log replay, torn tails
//! truncated — after a crash or restart. See [`store`].
//!
//! For serving over the network, [`server`] wraps a catalog in a TCP
//! front end whose admission queue coalesces concurrent point queries
//! into engine batches (the `pscc-server` binary is its daemon form).

pub use pscc_apps as apps;
pub use pscc_bag as bag;
pub use pscc_baselines as baselines;
pub use pscc_cc as cc;
pub use pscc_core as scc;
pub use pscc_engine as engine;
pub use pscc_graph as graph;
pub use pscc_lelists as lelists;
pub use pscc_runtime as runtime;
pub use pscc_server as server;
pub use pscc_store as store;
pub use pscc_table as table;
pub use pscc_telemetry as telemetry;

/// The most common imports in one place.
pub mod prelude {
    pub use pscc_apps::{condense, scc_topological_order, topological_order, Lit, TwoSat};
    pub use pscc_bag::{BagConfig, HashBag};
    pub use pscc_baselines::{fwbw_scc, gbbs_scc, kosaraju_scc, multistep_scc, tarjan_scc};
    pub use pscc_cc::{connected_components, CcConfig, LddConfig, LddMode};
    pub use pscc_core::{parallel_scc, parallel_scc_with_stats, ReachParams, SccConfig, SccResult};
    pub use pscc_engine::{Catalog, Delta, Index as ReachIndex, IndexConfig, QueryBatch};
    pub use pscc_graph::{DiGraph, UnGraph, V};
    pub use pscc_lelists::{cohen_le_lists, le_lists, FrontierMode, LeListsConfig};
    pub use pscc_runtime::{num_workers, with_threads};
}

//! Property-based tests on the core data structures: the parallel hash
//! bag, the phase-concurrent pair table, and concurrent union-find.

use proptest::prelude::*;
use std::collections::HashSet;

use parallel_scc::bag::{BagConfig, HashBag};
use parallel_scc::cc::ConcurrentUnionFind;
use parallel_scc::runtime::par_for;
use parallel_scc::table::{Insert, PairTable};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn bag_extract_returns_exactly_what_was_inserted(
        items in proptest::collection::hash_set(0u32..1_000_000, 0..400),
        lambda_exp in 1usize..8,
        sigma in 2usize..64,
    ) {
        let cfg = BagConfig { lambda: 1 << lambda_exp, sigma, ..BagConfig::default() };
        let bag: HashBag<u32> = HashBag::with_config(items.len().max(1), cfg);
        let vec: Vec<u32> = items.iter().copied().collect();
        par_for(vec.len(), |i| bag.insert(vec[i]));
        let got: HashSet<u32> = bag.extract_all().into_iter().collect();
        prop_assert_eq!(got, items);
    }

    #[test]
    fn bag_multiple_extract_cycles(
        rounds in proptest::collection::vec(
            proptest::collection::hash_set(0u32..100_000, 1..100), 1..6),
    ) {
        let max = rounds.iter().map(|r| r.len()).max().unwrap_or(1);
        let bag: HashBag<u32> = HashBag::new(max);
        for round in rounds {
            let vec: Vec<u32> = round.iter().copied().collect();
            par_for(vec.len(), |i| bag.insert(vec[i]));
            let got: HashSet<u32> = bag.extract_all().into_iter().collect();
            prop_assert_eq!(got, round);
        }
    }

    #[test]
    fn table_membership_matches_reference_set(
        keys in proptest::collection::vec(0u64..1_000_000, 0..500),
        probes in proptest::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut t = PairTable::with_capacity(keys.len().max(8));
        let mut reference = HashSet::new();
        for &k in &keys {
            loop {
                match t.insert(k) {
                    Insert::Added => { prop_assert!(reference.insert(k)); break; }
                    Insert::Present => { prop_assert!(reference.contains(&k)); break; }
                    Insert::Full => t.grow(),
                }
            }
        }
        prop_assert_eq!(t.len(), reference.len());
        for &p in &probes {
            prop_assert_eq!(t.contains(p), reference.contains(&p));
        }
        let got: HashSet<u64> = t.keys().into_iter().collect();
        prop_assert_eq!(got, reference);
    }

    #[test]
    fn union_find_matches_sequential_dsu(
        n in 2usize..200,
        unions in proptest::collection::vec((0usize..200, 0usize..200), 0..300),
    ) {
        let unions: Vec<(u32, u32)> = unions
            .into_iter()
            .map(|(a, b)| ((a % n) as u32, (b % n) as u32))
            .collect();
        let uf = ConcurrentUnionFind::new(n);
        par_for(unions.len(), |i| { uf.unite(unions[i].0, unions[i].1); });

        // Sequential reference.
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(p: &mut [u32], mut x: u32) -> u32 {
            while p[x as usize] != x { p[x as usize] = p[p[x as usize] as usize]; x = p[x as usize]; }
            x
        }
        for &(a, b) in &unions {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb { let (lo, hi) = (ra.min(rb), ra.max(rb)); parent[hi as usize] = lo; }
        }
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                prop_assert_eq!(
                    uf.same_set(a, b),
                    find(&mut parent, a) == find(&mut parent, b),
                    "pair ({}, {})", a, b
                );
            }
        }
    }

    #[test]
    fn bag_survives_any_config(
        n in 1usize..2000,
        lambda_exp in 1usize..6,
        sigma in 1usize..16,
        kappa in 1usize..8,
    ) {
        // Failure injection: degenerate parameters must never lose items.
        let cfg = BagConfig { lambda: 1 << lambda_exp, sigma, kappa, alpha: 0.5 };
        let bag: HashBag<u32> = HashBag::with_config(n, cfg);
        par_for(n, |i| bag.insert(i as u32));
        prop_assert_eq!(bag.extract_all().len(), n);
    }
}

//! The 2-hop label tier's end-to-end oracle: under a label-forcing
//! config (`bitset_budget_bytes: 0`, `label_min_components: 0`), every
//! answer the engine serves — across the shared scenario suite, the
//! hub-heavy label scenarios, random delta sequences, proptest fuzz, and
//! a snapshot+WAL recovery — must equal a from-scratch BFS oracle, and
//! `QueryTier::LabelIntersect` must demonstrably decide queries (the
//! label path has no DFS fallback to hide behind).

use parallel_scc::engine::{
    BatchOptions, Delta, IndexConfig as EngineIndexConfig, QueryTier, SummaryTier,
};
use parallel_scc::prelude::*;
use pscc_runtime::SplitMix64;
use std::collections::BTreeSet;

mod common;
use common::bfs_reaches;
use common::scenarios::{label_scenario_suite, replay_against_oracle, scenario_suite};

/// The label-forcing config: no bitset budget, no component floor, so
/// any DAG with at least one component gets the 2-hop labeling.
fn label_config() -> EngineIndexConfig {
    EngineIndexConfig {
        bitset_budget_bytes: 0,
        label_min_components: 0,
        ..EngineIndexConfig::default()
    }
}

/// Every scenario of the shared suite *and* the hub-heavy label suite,
/// replayed under the label tier with per-step tier expectations and the
/// all-pairs from-scratch oracle after every step. The scripted repair
/// tiers are summary-agnostic, so the same expectations must hold here.
#[test]
fn scenario_suites_match_oracle_on_the_label_tier() {
    for scenario in scenario_suite(0x1abe1).into_iter().chain(label_scenario_suite(0x1abe1)) {
        let _ = replay_against_oracle(&scenario, label_config(), true, true);
    }
}

/// Coverage: on a hub-heavy graph the label tier must actually decide
/// queries — `LabelIntersect` fires, and none of the other summary
/// tiers' provenance (bitset rows, exception lists, interval refutes,
/// pruned DFS) can appear under a label-tier index.
#[test]
fn label_intersect_provenance_fires_and_excludes_other_summaries() {
    let scenario = &label_scenario_suite(0x77)[0];
    let g = DiGraph::from_edges(scenario.n, &scenario.edges);
    let n = scenario.n;
    let catalog = Catalog::new();
    catalog.insert_with_config("g", g, label_config(), BatchOptions::default());
    let idx = catalog.index("g").expect("registered");
    assert_eq!(idx.tier(), SummaryTier::Labels, "config must force the label tier");
    let queries: Vec<(V, V)> = (0..n as V).flat_map(|u| (0..n as V).map(move |v| (u, v))).collect();
    let explains = catalog.answer_batch_explained("g", &queries).expect("registered");
    let intersections = explains.iter().filter(|ex| ex.tier == QueryTier::LabelIntersect).count();
    assert!(intersections > 0, "no query was decided by a label intersection");
    for ex in &explains {
        assert!(
            !matches!(
                ex.tier,
                QueryTier::BitsetRow
                    | QueryTier::ExceptionList
                    | QueryTier::IntervalRefute
                    | QueryTier::PrunedDfs
            ),
            "query ({}, {}) leaked {} provenance through a label-tier index",
            ex.u,
            ex.v,
            ex.tier.name()
        );
    }
}

/// Random delta sequences against the all-pairs oracle: the label tier
/// must survive splice patches and relabels across arbitrary mixed
/// workloads, mirroring `engine_repair_planner.rs` but pinned to labels.
#[test]
fn random_delta_sequences_match_oracle_on_the_label_tier() {
    for seed in 0..12u64 {
        let mut rng = SplitMix64::new(0x1abe1ed ^ seed);
        let n = 24 + (seed as usize % 3) * 12;
        let g = parallel_scc::graph::generators::random::gnm_digraph(n, n * 3, seed);
        let mut edges: BTreeSet<(V, V)> = g.out_csr().edges().collect();
        let catalog = Catalog::new();
        catalog.insert_with_config("g", g, label_config(), BatchOptions::default());
        let idx = catalog.index("g").expect("registered");
        assert_eq!(idx.tier(), SummaryTier::Labels);
        for step in 0..10u64 {
            let mut ins: Vec<(V, V)> = Vec::new();
            let mut del: Vec<(V, V)> = Vec::new();
            if step % 3 != 1 && !edges.is_empty() {
                let doomed =
                    *edges.iter().nth(rng.next_below(edges.len() as u64) as usize).unwrap();
                del.push(doomed);
            }
            if step % 3 != 0 {
                for _ in 0..1 + rng.next_below(3) {
                    ins.push((rng.next_below(n as u64) as V, rng.next_below(n as u64) as V));
                }
            }
            let delta = Delta::from_parts(ins.clone(), del.clone());
            catalog.apply_delta("g", &delta).expect("valid delta");
            for e in &del {
                if !ins.contains(e) {
                    edges.remove(e);
                }
            }
            edges.extend(ins.iter().copied());
            let edge_list: Vec<(V, V)> = edges.iter().copied().collect();
            let oracle = DiGraph::from_edges(n, &edge_list);
            for u in 0..n as V {
                for v in 0..n as V {
                    assert_eq!(
                        catalog.reaches("g", u, v),
                        Some(bfs_reaches(&oracle, u, v)),
                        "seed {seed} step {step}: ({u}, {v}) diverged"
                    );
                }
            }
        }
    }
}

/// Label-tier provenance must survive the snapshot+WAL round trip: a
/// persisted catalog re-opened with the label config serves identical
/// answers, still on the label tier, with `LabelIntersect` verdicts.
#[test]
fn label_tier_survives_snapshot_and_wal_recovery() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("pscc_label_oracle_wal_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let scenario = &label_scenario_suite(0x9a)[1];
    let n = scenario.n;
    let g = DiGraph::from_edges(n, &scenario.edges);
    let mut edges: BTreeSet<(V, V)> = g.out_csr().edges().collect();
    let catalog = Catalog::new();
    catalog.insert_with_config("g", g, label_config(), BatchOptions::default());
    catalog.persist_to("g", &dir).expect("persist");
    let _ = catalog.index("g").expect("registered");
    for step in &scenario.steps {
        let delta = Delta::from_parts(step.insertions.clone(), step.deletions.clone());
        catalog.apply_delta("g", &delta).expect("valid delta");
        for e in &step.deletions {
            if !step.insertions.contains(e) {
                edges.remove(e);
            }
        }
        edges.extend(step.insertions.iter().copied());
    }
    drop(catalog);

    let recovered = Catalog::open_with_config(&dir, label_config()).expect("recover");
    let idx = recovered.index("g").expect("recovered entry");
    assert_eq!(idx.tier(), SummaryTier::Labels, "recovery must rebuild onto the label tier");
    let edge_list: Vec<(V, V)> = edges.iter().copied().collect();
    let oracle = DiGraph::from_edges(n, &edge_list);
    let queries: Vec<(V, V)> = (0..n as V).flat_map(|u| (0..n as V).map(move |v| (u, v))).collect();
    let explains = recovered.answer_batch_explained("g", &queries).expect("recovered entry");
    let mut intersections = 0usize;
    for ex in &explains {
        assert_eq!(
            ex.reaches,
            bfs_reaches(&oracle, ex.u, ex.v),
            "recovered answer ({}, {}) diverged from the oracle",
            ex.u,
            ex.v
        );
        if ex.tier == QueryTier::LabelIntersect {
            intersections += 1;
        }
        assert_ne!(ex.tier, QueryTier::PrunedDfs, "label tier has no DFS fallback");
    }
    assert!(intersections > 0, "recovery must preserve label-intersection provenance");
    std::fs::remove_dir_all(&dir).ok();
}

/// The same oracle under unconstrained fuzz, pinned to the label tier:
/// arbitrary base graphs and delta sequences, all-pairs BFS checks after
/// every step (mirrors `engine_repair_planner.rs::fuzz`).
mod fuzz {
    use super::*;
    use proptest::prelude::*;

    type EdgeList = Vec<(V, V)>;

    fn arb_graph() -> impl Strategy<Value = (usize, Vec<(V, V)>)> {
        (4usize..40).prop_flat_map(|n| {
            let edge = (0..n as u32, 0..n as u32);
            proptest::collection::vec(edge, 0..(n * 3)).prop_map(move |edges| (n, edges))
        })
    }

    fn arb_deltas(n: usize) -> impl Strategy<Value = Vec<(EdgeList, EdgeList)>> {
        let edge = (0..n as u32, 0..n as u32);
        let one =
            (proptest::collection::vec(edge.clone(), 0..8), proptest::collection::vec(edge, 0..6));
        proptest::collection::vec(one, 1..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn label_delta_sequences_match_bfs_after_every_step(
            graph_spec in arb_graph(),
            seq in (4usize..40).prop_flat_map(arb_deltas),
            build_first in any::<bool>(),
        ) {
            let (n, base) = graph_spec;
            let base: Vec<(V, V)> = base.into_iter()
                .map(|(u, v)| (u % n as V, v % n as V)).collect();
            let g = DiGraph::from_edges(n, &base);
            let mut edges: BTreeSet<(V, V)> = g.out_csr().edges().collect();
            let catalog = Catalog::new();
            catalog.insert_with_config("g", g, label_config(), BatchOptions::default());
            if build_first {
                let _ = catalog.index("g").unwrap();
            }
            for (ins, del) in seq {
                let ins: Vec<(V, V)> = ins.into_iter()
                    .map(|(u, v)| (u % n as V, v % n as V)).collect();
                let del: Vec<(V, V)> = del.into_iter()
                    .map(|(u, v)| (u % n as V, v % n as V)).collect();
                let delta = Delta::from_parts(ins.clone(), del.clone());
                catalog.apply_delta("g", &delta).unwrap();
                let del_effective: Vec<(V, V)> =
                    del.iter().filter(|e| !ins.contains(e)).copied().collect();
                for e in &del_effective {
                    edges.remove(e);
                }
                edges.extend(ins.iter().copied());
                let edge_list: Vec<(V, V)> = edges.iter().copied().collect();
                let oracle = DiGraph::from_edges(n, &edge_list);
                for u in 0..n as V {
                    for v in 0..n as V {
                        prop_assert_eq!(
                            catalog.reaches("g", u, v),
                            Some(bfs_reaches(&oracle, u, v)),
                            "({}, {})", u, v
                        );
                    }
                }
            }
        }
    }
}

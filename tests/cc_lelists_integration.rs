//! Integration tests for the two companion applications (§5): connectivity
//! and LE-lists, cross-checked against sequential oracles on the paper's
//! graph families.

use parallel_scc::cc::sequential_cc;
use parallel_scc::lelists::bgss::le_lists_with_priority;
use parallel_scc::prelude::*;
use parallel_scc::runtime::random_permutation;
use parallel_scc::scc::verify::same_partition;
use proptest::prelude::*;

fn check_cc(name: &str, g: &UnGraph) {
    let want = sequential_cc(g);
    for mode in [LddMode::HashBagVgc, LddMode::EdgeRevisit] {
        let cfg = CcConfig { ldd: LddConfig { mode, ..LddConfig::default() } };
        let got = connected_components(g, &cfg);
        assert!(same_partition(&got.labels, &want), "{name} mode {mode:?}");
    }
}

fn check_lelists(name: &str, g: &UnGraph, seed: u64) {
    let perm = random_permutation(g.n(), seed);
    let want = cohen_le_lists(g, &perm);
    for mode in [FrontierMode::HashBag, FrontierMode::EdgeRevisit] {
        let cfg = LeListsConfig { mode, ..LeListsConfig::default() };
        let (got, _) = le_lists_with_priority(g, &perm, &cfg);
        assert_eq!(got, want, "{name} mode {mode:?}");
    }
}

#[test]
fn cc_on_paper_families() {
    let rmat = parallel_scc::graph::generators::rmat::rmat_digraph(11, 12_000, 1).symmetrize();
    check_cc("rmat", &rmat);
    let lat = parallel_scc::graph::generators::lattice::lattice_sqr_prime(40, 40, 2).symmetrize();
    check_cc("lattice", &lat);
    let pts = parallel_scc::graph::generators::knn::uniform_points(1200, 3);
    let knn = parallel_scc::graph::generators::knn::knn_digraph(&pts, 4).symmetrize();
    check_cc("knn", &knn);
}

#[test]
fn lelists_on_paper_families() {
    let rmat = parallel_scc::graph::generators::rmat::rmat_digraph(9, 4_000, 4).symmetrize();
    check_lelists("rmat", &rmat, 11);
    let lat = parallel_scc::graph::generators::lattice::lattice_sqr(15, 15, 5).symmetrize();
    check_lelists("lattice", &lat, 12);
    let pts = parallel_scc::graph::generators::knn::clustered_points(400, 4, 6);
    let knn = parallel_scc::graph::generators::knn::knn_digraph(&pts, 3).symmetrize();
    check_lelists("knn", &knn, 13);
}

#[test]
fn cc_component_count_matches_scc_on_symmetric_graphs() {
    // On an undirected (symmetrized) graph, SCCs and CCs coincide.
    let g = parallel_scc::graph::generators::random::gnm_digraph(800, 1200, 9);
    let ug = g.symmetrize();
    let cc = connected_components(&ug, &CcConfig::default());
    let scc = parallel_scc(&ug.as_digraph(), &SccConfig::default());
    assert_eq!(cc.num_components, scc.num_sccs);
    assert!(same_partition(&cc.labels, &scc.labels));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_cc_matches_sequential(
        n in 2usize..120,
        edges in proptest::collection::vec((0u32..120, 0u32..120), 0..300),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let g = UnGraph::from_undirected_edges(n, &edges);
        let want = sequential_cc(&g);
        let got = connected_components(&g, &CcConfig::default());
        prop_assert!(same_partition(&got.labels, &want));
    }

    #[test]
    fn prop_lelists_match_cohen(
        n in 2usize..60,
        edges in proptest::collection::vec((0u32..60, 0u32..60), 0..150),
        seed in 0u64..1000,
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let g = UnGraph::from_undirected_edges(n, &edges);
        let perm = random_permutation(n, seed);
        let want = cohen_le_lists(&g, &perm);
        let (got, _) = le_lists_with_priority(&g, &perm, &LeListsConfig::default());
        prop_assert_eq!(got, want);
    }

    #[test]
    fn prop_lelists_invariants(
        n in 2usize..60,
        edges in proptest::collection::vec((0u32..60, 0u32..60), 0..150),
        seed in 0u64..1000,
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let g = UnGraph::from_undirected_edges(n, &edges);
        let cfg = LeListsConfig { seed, ..LeListsConfig::default() };
        let res = le_lists(&g, &cfg);
        let mut rank = vec![0u32; n];
        for (i, &v) in res.priority.iter().enumerate() {
            rank[v as usize] = i as u32;
        }
        for (v, list) in res.lists.iter().enumerate() {
            // Every list ends with the vertex itself at distance 0.
            prop_assert_eq!(*list.last().unwrap(), (v as u32, 0));
            // Distances strictly decrease; priorities strictly increase...
            // (ranks decrease since earlier-priority = smaller rank appears
            // first in the list).
            for w in list.windows(2) {
                prop_assert!(w[1].1 < w[0].1, "distances must strictly decrease");
                prop_assert!(
                    rank[w[1].0 as usize] > rank[w[0].0 as usize],
                    "priority ranks must increase along the list"
                );
            }
        }
    }
}

//! Acceptance test for the engine: a 10k-query batch on a 100k+-vertex
//! RMAT graph must be answered identically to the brute-force BFS oracle.
//!
//! Queries are 100 random sources × 100 random targets, so the oracle is
//! 100 BFS traversals instead of 10 000 while the batch still sees 10 000
//! independent pairs.

use parallel_scc::prelude::*;

fn bfs_reach_set(g: &DiGraph, src: V) -> Vec<bool> {
    let mut seen = vec![false; g.n()];
    let mut stack = vec![src];
    seen[src as usize] = true;
    while let Some(x) = stack.pop() {
        for &w in g.out_neighbors(x) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                stack.push(w);
            }
        }
    }
    seen
}

#[test]
fn rmat_100k_batch_matches_bfs_oracle() {
    // 2^17 = 131 072 vertices, ~2 edges per vertex (sparse keeps many
    // nontrivial SCCs and a deep condensation DAG).
    let g = parallel_scc::graph::generators::rmat::rmat_digraph(17, 262_144, 0xa11ce);
    assert!(g.n() > 100_000);

    let index = ReachIndex::build(&g);
    let batch = QueryBatch::new(&index);

    let mut rng = pscc_runtime::SplitMix64::new(0xfeed);
    let sources: Vec<V> = (0..100).map(|_| rng.next_below(g.n() as u64) as V).collect();
    let targets: Vec<V> = (0..100).map(|_| rng.next_below(g.n() as u64) as V).collect();
    let queries: Vec<(V, V)> =
        sources.iter().flat_map(|&u| targets.iter().map(move |&v| (u, v))).collect();
    assert_eq!(queries.len(), 10_000);

    let got = batch.answer(&queries);

    for (si, &u) in sources.iter().enumerate() {
        let oracle = bfs_reach_set(&g, u);
        for (ti, &v) in targets.iter().enumerate() {
            assert_eq!(
                got[si * targets.len() + ti],
                oracle[v as usize],
                "query ({u}, {v}) tier {:?}",
                index.tier()
            );
        }
    }
}

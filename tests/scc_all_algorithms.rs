//! Cross-algorithm integration tests: every SCC implementation in the
//! workspace must compute the same partition on every graph family of the
//! paper's evaluation (§6).

use parallel_scc::prelude::*;
use parallel_scc::scc::verify::same_partition;

/// Runs all six implementations and checks pairwise agreement.
fn check_all(name: &str, g: &DiGraph) {
    let want = tarjan_scc(g);
    let plain_reach = ReachParams { vgc: false, ..ReachParams::default() };

    let ours = parallel_scc(g, &SccConfig::default());
    assert!(same_partition(&ours.labels, &want), "{name}: ours vs tarjan");

    let ours_plain = parallel_scc(g, &SccConfig::plain());
    assert!(same_partition(&ours_plain.labels, &want), "{name}: plain vs tarjan");

    let ours_vgc1 = parallel_scc(g, &SccConfig::vgc1());
    assert!(same_partition(&ours_vgc1.labels, &want), "{name}: vgc1 vs tarjan");

    let (gbbs, _) = gbbs_scc(g, &SccConfig::default());
    assert!(same_partition(&gbbs.labels, &want), "{name}: gbbs vs tarjan");

    let ms = multistep_scc(g, &plain_reach);
    assert!(same_partition(&ms.labels, &want), "{name}: multistep vs tarjan");

    let fb = fwbw_scc(g, &plain_reach);
    assert!(same_partition(&fb.labels, &want), "{name}: fwbw vs tarjan");

    let kos = kosaraju_scc(g);
    assert!(same_partition(&kos, &want), "{name}: kosaraju vs tarjan");

    // SCC counts must agree too (Tab. 2's #SCC column is the paper's own
    // correctness check across implementations).
    let (k, largest) = parallel_scc::scc::verify::component_stats(&want);
    assert_eq!(ours.num_sccs, k, "{name}: #SCC");
    assert_eq!(ours.largest_scc, largest, "{name}: |SCC1|");
}

#[test]
fn social_style_rmat() {
    let g = parallel_scc::graph::generators::rmat::rmat_digraph(11, 16_000, 1);
    check_all("rmat", &g);
}

#[test]
fn web_style_bowtie() {
    let g = parallel_scc::graph::generators::simple::bowtie_web(2_000, 0.4, 3, 2);
    check_all("bowtie", &g);
}

#[test]
fn knn_uniform() {
    let pts = parallel_scc::graph::generators::knn::uniform_points(1_500, 3);
    let g = parallel_scc::graph::generators::knn::knn_digraph(&pts, 4);
    check_all("knn-uniform", &g);
}

#[test]
fn knn_clustered() {
    let pts = parallel_scc::graph::generators::knn::clustered_points(1_500, 5, 4);
    let g = parallel_scc::graph::generators::knn::knn_digraph(&pts, 3);
    check_all("knn-clustered", &g);
}

#[test]
fn lattice_oriented_sqr() {
    let g = parallel_scc::graph::generators::lattice::lattice_sqr(40, 40, 5);
    check_all("sqr", &g);
}

#[test]
fn lattice_oriented_rec() {
    let g = parallel_scc::graph::generators::lattice::lattice_sqr(80, 20, 6);
    check_all("rec", &g);
}

#[test]
fn lattice_tristate_sqr_prime() {
    let g = parallel_scc::graph::generators::lattice::lattice_sqr_prime(40, 40, 7);
    check_all("sqr'", &g);
}

#[test]
fn random_gnm_family() {
    for (n, m, seed) in [(500usize, 600usize, 10u64), (500, 1500, 11), (500, 3000, 12)] {
        let g = parallel_scc::graph::generators::random::gnm_digraph(n, m, seed);
        check_all(&format!("gnm-{n}-{m}"), &g);
    }
}

#[test]
fn long_cycle_and_path() {
    check_all("cycle", &parallel_scc::graph::generators::simple::cycle_digraph(3_000));
    check_all("path", &parallel_scc::graph::generators::simple::path_digraph(3_000));
}

#[test]
fn layered_dag() {
    let g = parallel_scc::graph::generators::simple::dag_layers(20, 50, 3, 8);
    check_all("dag", &g);
}

#[test]
fn extreme_tau_values_still_correct() {
    let g = parallel_scc::graph::generators::random::gnm_digraph(400, 1200, 20);
    let want = tarjan_scc(&g);
    for tau in [1usize, 2, 8, 64, 1 << 16] {
        let got = parallel_scc(&g, &SccConfig::default().with_tau(tau));
        assert!(same_partition(&got.labels, &want), "tau={tau}");
    }
}

#[test]
fn works_under_single_and_dual_thread_pools() {
    let g = parallel_scc::graph::generators::random::gnm_digraph(600, 2000, 30);
    let want = tarjan_scc(&g);
    for threads in [1usize, 2, 4] {
        let got = with_threads(threads, || parallel_scc(&g, &SccConfig::default()));
        assert!(same_partition(&got.labels, &want), "threads={threads}");
    }
}

#[test]
fn condensation_is_acyclic() {
    // Contract each SCC of a random graph; the condensation must be a DAG
    // (checked by Kahn's algorithm).
    let g = parallel_scc::graph::generators::random::gnm_digraph(300, 900, 40);
    let res = parallel_scc(&g, &SccConfig::default());
    let norm = parallel_scc::scc::verify::normalize_labels(&res.labels);
    let k = res.num_sccs;
    let mut edges = std::collections::HashSet::new();
    for (u, v) in g.out_csr().edges() {
        let (cu, cv) = (norm[u as usize], norm[v as usize]);
        if cu != cv {
            edges.insert((cu, cv));
        }
    }
    let mut indeg = vec![0usize; k];
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); k];
    for &(a, b) in &edges {
        adj[a as usize].push(b);
        indeg[b as usize] += 1;
    }
    let mut queue: Vec<u32> = (0..k as u32).filter(|&c| indeg[c as usize] == 0).collect();
    let mut seen = 0;
    while let Some(c) = queue.pop() {
        seen += 1;
        for &d in &adj[c as usize] {
            indeg[d as usize] -= 1;
            if indeg[d as usize] == 0 {
                queue.push(d);
            }
        }
    }
    assert_eq!(seen, k, "condensation contains a cycle");
}

//! Property-based tests for the reachability engine: on arbitrary random
//! digraphs (cyclic ones very much included), `Index::reaches` must agree
//! with a brute-force BFS oracle in every summary tier, and the
//! condensation DAG must be acyclic with reachability preserved.

use proptest::prelude::*;

use parallel_scc::engine::{BatchOptions, Delta, IndexConfig as EngineIndexConfig};
use parallel_scc::prelude::*;

mod common;
use common::bfs_reaches;

/// Arbitrary digraph: up to 70 vertices, density up to ~4 m/n, so samples
/// range from forests to graphs with one giant SCC.
fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (2usize..70).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..(n * 4))
            .prop_map(move |edges| DiGraph::from_edges(n, &edges))
    })
}

/// Interval-tier config (zero bitset budget forces it on any DAG).
fn interval_cfg() -> EngineIndexConfig {
    EngineIndexConfig { bitset_budget_bytes: 0, ..EngineIndexConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn index_matches_bfs_oracle_bitset_tier(g in arb_graph()) {
        let idx = ReachIndex::build(&g);
        for u in 0..g.n() as V {
            for v in 0..g.n() as V {
                prop_assert_eq!(idx.reaches(u, v), bfs_reaches(&g, u, v),
                    "({}, {})", u, v);
            }
        }
    }

    #[test]
    fn index_matches_bfs_oracle_interval_tier(g in arb_graph()) {
        let idx = ReachIndex::build_with_config(&g, &interval_cfg());
        for u in 0..g.n() as V {
            for v in 0..g.n() as V {
                prop_assert_eq!(idx.reaches(u, v), bfs_reaches(&g, u, v),
                    "({}, {})", u, v);
            }
        }
    }

    #[test]
    fn batch_agrees_with_sequential_and_oracle(
        g in arb_graph(),
        seed in 0u64..1000,
    ) {
        let idx = ReachIndex::build(&g);
        let batch = QueryBatch::with_options(&idx, &BatchOptions {
            memo_bits: 8, grain: 7,
        });
        let mut rng = pscc_runtime::SplitMix64::new(seed);
        let queries: Vec<(V, V)> = (0..200)
            .map(|_| (rng.next_below(g.n() as u64) as V, rng.next_below(g.n() as u64) as V))
            .collect();
        let par = batch.answer(&queries);
        let seq = batch.answer_sequential(&queries);
        prop_assert_eq!(&par, &seq);
        for (i, &(u, v)) in queries.iter().enumerate() {
            prop_assert_eq!(par[i], bfs_reaches(&g, u, v), "query ({}, {})", u, v);
        }
    }

    #[test]
    fn condensation_is_acyclic_and_preserves_reachability(g in arb_graph()) {
        let res = parallel_scc(&g, &SccConfig::default());
        let cond = condense(&g, &res.labels);
        // Acyclic: a topological order must exist (topo_order panics
        // otherwise), and every arc must strictly increase its position.
        let order = cond.topo_order();
        let mut pos = vec![0usize; cond.num_components()];
        for (i, &c) in order.iter().enumerate() {
            pos[c as usize] = i;
        }
        for (a, b) in cond.dag.out_csr().edges() {
            prop_assert!(pos[a as usize] < pos[b as usize], "arc {} -> {}", a, b);
        }
        // Levels respect arcs too.
        let levels = cond.topo_levels();
        for (a, b) in cond.dag.out_csr().edges() {
            prop_assert!(levels[a as usize] < levels[b as usize]);
        }
        // Reachability preserved: u ⇝ v in g iff comp(u) ⇝ comp(v) in the
        // condensation DAG.
        for u in 0..g.n() as V {
            for v in 0..g.n() as V {
                let (cu, cv) = (cond.comp_of[u as usize], cond.comp_of[v as usize]);
                let want = bfs_reaches(&g, u, v);
                let got = cu == cv || bfs_reaches(&cond.dag, cu, cv);
                prop_assert_eq!(got, want, "({}, {})", u, v);
            }
        }
    }

    /// Delta-vs-rebuild oracle: a random base graph updated through
    /// `Catalog::apply_delta` must answer every pair exactly like a BFS
    /// oracle running on the merged graph — whichever repair path
    /// (absorb/rebuild/defer) the delta took.
    #[test]
    fn apply_delta_matches_bfs_on_merged_graph(
        g in arb_graph(),
        raw_ins in proptest::collection::vec((0u32..70, 0u32..70), 0..40),
        raw_del in proptest::collection::vec((0u32..70, 0u32..70), 0..40),
        build_first in any::<bool>(),
    ) {
        let n = g.n();
        let clamp = |edges: &[(V, V)]| -> Vec<(V, V)> {
            edges.iter().map(|&(u, v)| (u % n as V, v % n as V)).collect()
        };
        let (ins, del) = (clamp(&raw_ins), clamp(&raw_del));

        let catalog = Catalog::new();
        catalog.insert("g", g.clone());
        if build_first {
            // Exercise the absorb-or-rebuild decision, not just Deferred.
            let _ = catalog.index("g").unwrap();
        }
        let delta = Delta::from_parts(ins.clone(), del.clone());
        let report = catalog.apply_delta("g", &delta).unwrap();

        // Oracle graph: (g ∖ del) ∪ ins rebuilt from scratch.
        let mut edges: Vec<(V, V)> = g
            .out_csr()
            .edges()
            .filter(|e| !del.contains(e) || ins.contains(e))
            .collect();
        edges.extend_from_slice(&ins);
        let oracle = DiGraph::from_edges(n, &edges);

        // The stored graph must be exactly the merged graph...
        let stored = catalog.graph("g").unwrap();
        prop_assert_eq!(stored.out_csr(), oracle.out_csr());
        prop_assert_eq!(stored.in_csr(), oracle.in_csr());
        // ...and every answer must match a BFS on it.
        for u in 0..n as V {
            for v in 0..n as V {
                prop_assert_eq!(catalog.reaches("g", u, v), Some(bfs_reaches(&oracle, u, v)),
                    "({}, {}) after {:?}", u, v, report.outcome);
            }
        }
    }

    #[test]
    fn catalog_round_trips_queries(g in arb_graph(), seed in 0u64..1000) {
        let n = g.n();
        let catalog = Catalog::new();
        catalog.insert("g", g.clone());
        let mut rng = pscc_runtime::SplitMix64::new(seed ^ 0xca7a);
        for _ in 0..50 {
            let (u, v) = (rng.next_below(n as u64) as V, rng.next_below(n as u64) as V);
            prop_assert_eq!(catalog.reaches("g", u, v), Some(bfs_reaches(&g, u, v)));
        }
    }
}

//! The repair planner's end-to-end oracle: random delta *sequences*
//! driven through `Catalog::apply_delta` must answer every vertex pair
//! exactly like a from-scratch `Index::build` over the merged graph
//! after **every** step — whichever repair tier each delta took — and
//! the run must exercise every tier at least once, so none of them is
//! silently unreachable.

use parallel_scc::engine::{
    BatchOptions, Delta, DeltaOutcome, IndexConfig as EngineIndexConfig, RepairBudget,
};
use parallel_scc::prelude::*;
use pscc_runtime::SplitMix64;
use std::collections::BTreeSet;

mod common;
use common::bfs_reaches;
use common::scenarios::{replay_against_oracle, scenario_suite};

/// One side of a delta: a plain edge list.
type EdgeList = Vec<(V, V)>;

/// Applies the delta semantics to a plain edge set:
/// `(edges ∖ deletions) ∪ insertions`.
fn apply_to_edge_set(edges: &mut BTreeSet<(V, V)>, ins: &[(V, V)], del: &[(V, V)]) {
    for e in del {
        if !ins.contains(e) {
            edges.remove(e);
        }
    }
    edges.extend(ins.iter().copied());
}

/// Asserts the catalog's stored graph and all-pairs answers equal a
/// from-scratch build over the tracked edge set.
fn check_against_scratch(catalog: &Catalog, n: usize, edges: &BTreeSet<(V, V)>, ctx: &str) {
    let edge_list: Vec<(V, V)> = edges.iter().copied().collect();
    let oracle_graph = DiGraph::from_edges(n, &edge_list);
    let stored = catalog.graph("g").expect("registered");
    assert_eq!(stored.out_csr(), oracle_graph.out_csr(), "{ctx}: stored graph diverged");
    let scratch = ReachIndex::build(&oracle_graph);
    for u in 0..n as V {
        for v in 0..n as V {
            assert_eq!(
                catalog.reaches("g", u, v),
                Some(scratch.reaches(u, v)),
                "{ctx}: answer ({u}, {v}) diverged from the from-scratch oracle"
            );
        }
    }
}

fn random_pair(rng: &mut SplitMix64, n: usize) -> (V, V) {
    (rng.next_below(n as u64) as V, rng.next_below(n as u64) as V)
}

/// Hunts for a pair satisfying `want` against the current index; `None`
/// after a bounded number of tries (the caller just skips the case).
fn find_pair(rng: &mut SplitMix64, n: usize, want: impl Fn(V, V) -> bool) -> Option<(V, V)> {
    for _ in 0..400 {
        let (u, v) = random_pair(rng, n);
        if want(u, v) {
            return Some((u, v));
        }
    }
    None
}

/// The shared scenario suite (the same harness the deletion oracle
/// uses, see `tests/common/scenarios.rs`) replayed with per-step tier
/// expectations: the insertion tiers are exercised by construction on
/// graph families beyond random G(n, m).
#[test]
fn scenario_suite_matches_oracle_with_scripted_tiers() {
    for scenario in scenario_suite(0x9e99) {
        let _ = replay_against_oracle(
            &scenario,
            parallel_scc::engine::IndexConfig::default(),
            true,
            true,
        );
    }
}

#[test]
fn random_delta_sequences_hit_every_tier_and_match_the_oracle() {
    // NoOp, Deferred, Absorbed, DagSpliced, RegionRecomputed,
    // ArcUnspliced, SccSplit, Rebuilt
    let mut outcomes = [0u64; 8];
    let tally = |outcomes: &mut [u64; 8], o: DeltaOutcome| {
        outcomes[match o {
            DeltaOutcome::NoOp => 0,
            DeltaOutcome::Deferred => 1,
            DeltaOutcome::Absorbed => 2,
            DeltaOutcome::DagSpliced => 3,
            DeltaOutcome::RegionRecomputed => 4,
            DeltaOutcome::ArcUnspliced => 5,
            DeltaOutcome::SccSplit => 6,
            DeltaOutcome::Rebuilt => 7,
        }] += 1;
    };

    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(0x91a_0e12 ^ seed);
        let n = 24 + (seed as usize % 3) * 12;
        let g = parallel_scc::graph::generators::random::gnm_digraph(n, n * 2, seed);
        let mut edges: BTreeSet<(V, V)> = g.out_csr().edges().collect();

        // Rotate through summary tiers and repair budgets so every tier
        // is reachable: tiny bitset budgets force the interval tier, and
        // a tiny region budget forces merge fallbacks to full rebuilds.
        let mut cfg = EngineIndexConfig::default();
        if seed % 2 == 1 {
            cfg.bitset_budget_bytes = 0;
        }
        if seed % 3 == 2 {
            cfg.repair = RepairBudget { region_frac: 0.05, min_region: 2, max_planned_arcs: 128 };
        }
        let catalog = Catalog::new();
        catalog.insert_with_config("g", g, cfg, BatchOptions::default());

        // First delta lands before any query: always Deferred.
        let (u, v) = random_pair(&mut rng, n);
        let mut d = Delta::new();
        d.insert(u, v).delete(u, v); // normalization keeps the insertion
        let report = catalog.apply_delta("g", &d).unwrap();
        tally(&mut outcomes, report.outcome);
        apply_to_edge_set(&mut edges, &[(u, v)], &[]);
        check_against_scratch(&catalog, n, &edges, &format!("seed {seed} deferred"));

        for step in 0..10u64 {
            let idx = catalog.index("g").expect("registered");
            let present = |u: V, v: V| edges.contains(&(u, v));
            let (ins, del): (EdgeList, EdgeList) = match step % 6 {
                // A no-op: re-insert a present edge, delete an absent one.
                0 => {
                    let Some(&(u, v)) = edges.iter().next() else { continue };
                    let absent = find_pair(&mut rng, n, |a, b| !present(a, b));
                    (vec![(u, v)], absent.into_iter().collect())
                }
                // Absorbable: an absent edge between a reachable pair.
                1 => match find_pair(&mut rng, n, |a, b| {
                    a != b && !present(a, b) && idx.reaches(a, b)
                }) {
                    Some(p) => (vec![p], vec![]),
                    None => continue,
                },
                // Splice: an absent edge with no reachability either way.
                2 => match find_pair(&mut rng, n, |a, b| {
                    !present(a, b) && !idx.reaches(a, b) && !idx.reaches(b, a)
                }) {
                    Some(p) => (vec![p], vec![]),
                    None => continue,
                },
                // Merge: reverse of a one-way reachable pair.
                3 => match find_pair(&mut rng, n, |a, b| {
                    !present(a, b) && !idx.reaches(a, b) && idx.reaches(b, a)
                }) {
                    Some(p) => (vec![p], vec![]),
                    None => continue,
                },
                // Deletion of a present edge (plus a random insertion).
                4 => {
                    if edges.is_empty() {
                        continue;
                    }
                    let doomed = *edges
                        .iter()
                        .nth(rng.next_below(edges.len() as u64) as usize)
                        .expect("checked non-empty");
                    (vec![random_pair(&mut rng, n)], vec![doomed])
                }
                // A fistful of arbitrary insertions.
                _ => {
                    let ins: Vec<(V, V)> = (0..4).map(|_| random_pair(&mut rng, n)).collect();
                    (ins, vec![])
                }
            };
            let delta = Delta::from_parts(ins.clone(), del.clone());
            let report = catalog.apply_delta("g", &delta).unwrap();
            tally(&mut outcomes, report.outcome);
            // Oracle semantics match the documented ends-up-present rule.
            let ins_set: Vec<(V, V)> = ins.clone();
            let del_effective: Vec<(V, V)> =
                del.iter().filter(|e| !ins_set.contains(e)).copied().collect();
            apply_to_edge_set(&mut edges, &ins, &del_effective);
            check_against_scratch(&catalog, n, &edges, &format!("seed {seed} step {step}"));
        }
    }

    let [noop, deferred, absorbed, spliced, region, unspliced, split, rebuilt] = outcomes;
    assert!(noop > 0, "NoOp never taken");
    assert!(deferred > 0, "Deferred never taken");
    assert!(absorbed > 0, "Absorbed tier never taken");
    assert!(spliced > 0, "DagSplice tier never taken");
    assert!(region > 0, "RegionRecompute tier never taken");
    // Step 4 deletes present edges: on these random graphs they land in
    // the unsplice or split tier (or, with an insertion riding along,
    // the rebuild fallback) — all three must stay reachable.
    assert!(unspliced + split > 0, "no deletion repaired in place");
    assert!(rebuilt > 0, "full-rebuild tier never taken");
}

/// The same oracle under unconstrained fuzz: arbitrary graphs, arbitrary
/// delta sequences, answers checked against BFS on the merged edge set
/// after every step.
mod fuzz {
    use super::*;
    use proptest::prelude::*;

    fn arb_graph() -> impl Strategy<Value = (usize, Vec<(V, V)>)> {
        (4usize..40).prop_flat_map(|n| {
            let edge = (0..n as u32, 0..n as u32);
            proptest::collection::vec(edge, 0..(n * 3)).prop_map(move |edges| (n, edges))
        })
    }

    fn arb_deltas(n: usize) -> impl Strategy<Value = Vec<(EdgeList, EdgeList)>> {
        let edge = (0..n as u32, 0..n as u32);
        let one =
            (proptest::collection::vec(edge.clone(), 0..8), proptest::collection::vec(edge, 0..6));
        proptest::collection::vec(one, 1..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn delta_sequences_match_bfs_after_every_step(
            graph_spec in arb_graph(),
            seq in (4usize..40).prop_flat_map(arb_deltas),
            interval_tier in any::<bool>(),
            build_first in any::<bool>(),
        ) {
            let (n, base) = graph_spec;
            let base: Vec<(V, V)> = base.into_iter()
                .map(|(u, v)| (u % n as V, v % n as V)).collect();
            let g = DiGraph::from_edges(n, &base);
            let mut edges: BTreeSet<(V, V)> = g.out_csr().edges().collect();
            let cfg = if interval_tier {
                EngineIndexConfig { bitset_budget_bytes: 0, ..EngineIndexConfig::default() }
            } else {
                EngineIndexConfig::default()
            };
            let catalog = Catalog::new();
            catalog.insert_with_config("g", g, cfg, BatchOptions::default());
            if build_first {
                let _ = catalog.index("g").unwrap();
            }
            for (ins, del) in seq {
                let ins: Vec<(V, V)> = ins.into_iter()
                    .map(|(u, v)| (u % n as V, v % n as V)).collect();
                let del: Vec<(V, V)> = del.into_iter()
                    .map(|(u, v)| (u % n as V, v % n as V)).collect();
                let delta = Delta::from_parts(ins.clone(), del.clone());
                catalog.apply_delta("g", &delta).unwrap();
                let del_effective: Vec<(V, V)> =
                    del.iter().filter(|e| !ins.contains(e)).copied().collect();
                apply_to_edge_set(&mut edges, &ins, &del_effective);
                let edge_list: Vec<(V, V)> = edges.iter().copied().collect();
                let oracle = DiGraph::from_edges(n, &edge_list);
                for u in 0..n as V {
                    for v in 0..n as V {
                        prop_assert_eq!(
                            catalog.reaches("g", u, v),
                            Some(bfs_reaches(&oracle, u, v)),
                            "({}, {})", u, v
                        );
                    }
                }
            }
        }
    }
}

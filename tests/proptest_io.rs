//! Property-based fuzzing of the graph IO readers: on arbitrarily
//! mutated, truncated, or garbage byte streams, `read_edge_list` and
//! `read_binary` must either parse successfully or return `Err` — never
//! panic, and never trust a corrupt header into a huge allocation.

use proptest::prelude::*;

use parallel_scc::graph::generators::random::gnm_digraph;
use parallel_scc::graph::io::{read_binary, read_edge_list, write_binary, write_edge_list};
use parallel_scc::prelude::*;

/// Unique temp path per call: tests run on parallel threads of one
/// process, so a global counter (not just pid + caller tag) keeps
/// concurrently running properties off each other's files.
fn tmp(name: &str, tag: u64) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    let serial = UNIQUE.fetch_add(1, Ordering::Relaxed);
    let mut p = std::env::temp_dir();
    p.push(format!("pscc_fuzz_{name}_{tag}_{serial}_{}", std::process::id()));
    p
}

/// Runs `read` on `bytes` written to a temp file; the only requirement is
/// that it returns (Ok or Err) instead of panicking or aborting.
fn must_not_panic<T>(
    name: &str,
    tag: u64,
    bytes: &[u8],
    read: impl Fn(&std::path::Path) -> std::io::Result<T>,
) {
    let path = tmp(name, tag);
    std::fs::write(&path, bytes).unwrap();
    let _ = read(&path);
    std::fs::remove_file(path).ok();
}

/// A valid serialized graph to corrupt, as raw bytes.
fn serialized(binary: bool, n: usize, m: usize, seed: u64) -> Vec<u8> {
    let g = gnm_digraph(n, m, seed);
    let path = tmp(if binary { "base_bin" } else { "base_txt" }, seed);
    if binary {
        write_binary(&g, &path).unwrap();
    } else {
        write_edge_list(&g, &path).unwrap();
    }
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(path).ok();
    bytes
}

/// Applies `flips` random byte overwrites and an optional truncation.
fn mutate(mut bytes: Vec<u8>, flips: &[(usize, u8)], truncate_to: usize) -> Vec<u8> {
    for &(pos, val) in flips {
        if !bytes.is_empty() {
            let idx = pos % bytes.len();
            bytes[idx] = val;
        }
    }
    if truncate_to < bytes.len() {
        bytes.truncate(truncate_to);
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_reader_never_panics_on_mutations(
        seed in 0u64..1_000_000,
        flips in proptest::collection::vec((0usize..4096, 0u8..255), 0..12),
        truncate_to in 0usize..4096,
    ) {
        let bytes = mutate(serialized(true, 40, 120, seed), &flips, truncate_to);
        must_not_panic("bin", seed, &bytes, |p| read_binary(p));
    }

    #[test]
    fn text_reader_never_panics_on_mutations(
        seed in 0u64..1_000_000,
        flips in proptest::collection::vec((0usize..4096, 0u8..255), 0..12),
        truncate_to in 0usize..4096,
    ) {
        let bytes = mutate(serialized(false, 40, 120, seed), &flips, truncate_to);
        must_not_panic("txt", seed, &bytes, |p| read_edge_list(p));
    }

    #[test]
    fn both_readers_survive_pure_garbage(
        bytes in proptest::collection::vec(0u8..255, 0..600),
        seed in 0u64..1_000_000,
    ) {
        must_not_panic("garbage_bin", seed, &bytes, |p| read_binary(p));
        must_not_panic("garbage_txt", seed, &bytes, |p| read_edge_list(p));
    }

    #[test]
    fn unmutated_roundtrip_still_parses(seed in 0u64..1_000_000) {
        let g = gnm_digraph(30, 90, seed);
        let bp = tmp("round_bin", seed);
        let tp = tmp("round_txt", seed);
        write_binary(&g, &bp).unwrap();
        write_edge_list(&g, &tp).unwrap();
        let from_bin = read_binary(&bp).unwrap();
        let from_txt = read_edge_list(&tp).unwrap();
        prop_assert_eq!(g.out_csr(), from_bin.out_csr());
        prop_assert_eq!(g.out_csr(), from_txt.out_csr());
        std::fs::remove_file(bp).ok();
        std::fs::remove_file(tp).ok();
    }

    /// Corrupt headers specifically: every field combination must be
    /// rejected or parsed, and rejection must happen before the reader
    /// commits to header-sized allocations (the test would OOM/abort
    /// otherwise — `n`/`m` here imply terabytes).
    #[test]
    fn binary_reader_rejects_hostile_headers(
        n in proptest::collection::vec(0u8..255, 8..9),
        m in proptest::collection::vec(0u8..255, 8..9),
        seed in 0u64..1_000_000,
    ) {
        let mut bytes = serialized(true, 10, 20, seed);
        bytes[8..16].copy_from_slice(&n);
        bytes[16..24].copy_from_slice(&m);
        must_not_panic("hostile", seed, &bytes, |p| read_binary(p));
    }
}

/// The DiGraph invariants must hold on anything the readers accept, even
/// mutated input: whatever parses must be a structurally valid graph.
#[test]
fn accepted_mutants_are_structurally_valid() {
    let base = serialized(true, 25, 70, 7);
    for i in 0..base.len() {
        for val in [0u8, 1, 0x7f, 0xff] {
            let mut bytes = base.clone();
            bytes[i] = val;
            let path = tmp("valid_mut", (i as u64) << 8 | val as u64);
            std::fs::write(&path, &bytes).unwrap();
            if let Ok(g) = read_binary(&path) {
                // Offsets/targets invariants: n()/m() consistent, all
                // adjacency slices in bounds (neighbors would panic
                // otherwise), transpose agrees on edge count.
                for v in 0..g.n() as V {
                    for &w in g.out_neighbors(v) {
                        assert!((w as usize) < g.n());
                    }
                }
                assert_eq!(g.out_csr().m(), g.in_csr().m());
            }
            std::fs::remove_file(path).ok();
        }
    }
}

//! End-to-end acceptance tests for the `pscc-telemetry` wiring: one
//! `apply_delta` yields a causal span trace with per-stage durations, the
//! same operation is visible through diffable metric snapshots, and the
//! Prometheus-style exposition renders quantile lines for the batch and
//! WAL histograms after real durable traffic.

use parallel_scc::engine::{Catalog, Delta, DeltaOutcome};
use parallel_scc::prelude::*;
use parallel_scc::telemetry;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pscc_telemetry_test_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// One `apply_delta` produces the causal trace the observability story
/// promises: a root `apply_delta` span with `normalize`, `execute`
/// (containing `plan` with its chosen tier), and `swap` children, all
/// sharing the root's trace id and nesting inside its time window.
#[test]
fn apply_delta_emits_a_causal_span_trace() {
    let name = "telemetry_e2e_trace";
    let cat = Catalog::new();
    // Two chains; inserting 2 -> 3 adds a condensation arc (DagSplice).
    cat.insert(name, DiGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]));
    let _ = cat.index(name).unwrap(); // eager build so the delta repairs

    let before = telemetry::TelemetrySnapshot::capture();
    let mut d = Delta::new();
    d.insert(2, 3);
    let report = cat.apply_delta(name, &d).unwrap();
    assert_eq!(report.outcome, DeltaOutcome::DagSpliced);

    let spans = telemetry::snapshot_spans();
    let root = spans
        .iter()
        .rev()
        .find(|s| s.name == "apply_delta" && s.attr("graph") == Some(name))
        .expect("apply_delta recorded a root span");
    assert_eq!(root.parent, 0, "apply_delta is a trace root");
    assert_eq!(root.attr("outcome"), Some("dag_spliced"));

    let child = |stage: &str| {
        spans
            .iter()
            .rev()
            .find(|s| s.trace == root.trace && s.name == stage)
            .unwrap_or_else(|| panic!("stage span `{stage}` missing from the trace"))
    };
    let normalize = child("normalize");
    let execute = child("execute");
    let plan = child("plan");
    let swap = child("swap");
    assert_eq!(normalize.parent, root.id);
    assert_eq!(execute.parent, root.id);
    assert_eq!(swap.parent, root.id);
    assert_eq!(plan.parent, execute.id, "the planner runs inside execute");
    assert_eq!(plan.attr("tier"), Some("dag_splice"));
    for stage in [normalize, execute, plan, swap] {
        assert!(
            stage.start_ns >= root.start_ns && stage.end_ns <= root.end_ns,
            "stage `{}` must nest inside the root's time window",
            stage.name
        );
        assert!(stage.duration_nanos() <= root.duration_nanos());
    }
    // Causal order: normalization completes before execution, which
    // completes before the swap publishes the repaired index.
    assert!(normalize.end_ns <= execute.start_ns);
    assert!(execute.end_ns <= swap.start_ns);

    // The same application is visible through the metrics diff.
    let diff = telemetry::TelemetrySnapshot::capture().since(&before);
    assert_eq!(diff.counter(&format!("pscc_catalog_deltas_total{{graph=\"{name}\"}}")), 1);
    let hist = diff
        .histogram(&format!("pscc_catalog_delta_nanos{{graph=\"{name}\"}}"))
        .expect("per-graph delta histogram captured");
    assert_eq!(hist.count, 1);
    assert!(hist.quantile_nanos(0.5) > 0.0);
}

/// Durable traffic (WAL-logged deltas + a query batch) shows up in the
/// Prometheus-style text exposition with quantile lines, and the JSON
/// rendering carries the same instruments.
#[test]
fn exposition_renders_quantiles_after_durable_traffic() {
    let name = "telemetry_e2e_expo";
    let dir = tmpdir("expo");
    let n = 512usize;
    let g = parallel_scc::graph::generators::random::gnm_digraph(n, 2_000, 0x7e1e);
    let cat = Catalog::new();
    cat.insert(name, g);
    cat.persist_to(name, &dir).unwrap();
    let _ = cat.index(name).unwrap();

    let before = telemetry::TelemetrySnapshot::capture();
    // NOT the graph's seed: the same stream would replay existing edges
    // and every delta would normalize to a no-op.
    let mut rng = pscc_runtime::SplitMix64::new(0x0b5e);
    for _ in 0..4 {
        let mut d = Delta::new();
        d.insert(rng.next_below(n as u64) as V, rng.next_below(n as u64) as V);
        cat.apply_delta(name, &d).unwrap();
    }
    let queries: Vec<(V, V)> =
        (0..256).map(|_| (rng.next_below(n as u64) as V, rng.next_below(n as u64) as V)).collect();
    cat.answer_batch(name, &queries).unwrap();

    let diff = telemetry::TelemetrySnapshot::capture().since(&before);
    assert!(diff.counter("pscc_wal_appends_total") >= 1, "durable deltas hit the WAL");
    assert_eq!(diff.counter("pscc_batch_queries_total"), queries.len() as u64);
    let fsync = diff.histogram("pscc_wal_fsync_nanos").expect("fsync histogram captured");
    assert!(fsync.count >= 1);

    let text = telemetry::render_text();
    for line in [
        "pscc_batch_query_nanos{quantile=\"0.5\"}",
        "pscc_batch_query_nanos{quantile=\"0.99\"}",
        "pscc_wal_fsync_nanos{quantile=\"0.99\"}",
        "pscc_wal_append_nanos_count",
        "pscc_wal_appends_total",
    ] {
        assert!(text.contains(line), "exposition missing `{line}`:\n{text}");
    }
    let json = telemetry::render_json();
    assert!(json.contains("\"pscc_wal_fsync_nanos\""), "JSON missing fsync histogram:\n{json}");

    std::fs::remove_dir_all(&dir).ok();
}

/// Hammer one histogram from the worker pool: every recorded sample must
/// be counted exactly once (the lock-free buckets lose nothing under
/// contention), and the quantiles stay within the recorded value range.
#[test]
fn histogram_survives_a_parallel_hammer() {
    let hist = telemetry::histogram("pscc_test_hammer_nanos");
    let before = hist.count();
    let rounds = 200_000usize;
    with_threads(8, || {
        parallel_scc::runtime::par_for(rounds, |i| {
            hist.record_nanos((i % 1_000) as u64 + 1);
        });
    });
    assert_eq!(hist.count() - before, rounds as u64);
    let snap = hist.snapshot();
    for q in [0.5, 0.9, 0.99] {
        let v = snap.quantile_nanos(q);
        assert!((1.0..=1_000.0 * 1.25).contains(&v), "q{q} = {v} out of range");
    }
}

//! End-to-end concurrency tests for the `pscc-server` TCP front end:
//! many client threads fire mixed point queries and edge deltas at a
//! live server and every answer is checked against a client-side BFS
//! oracle. The concurrent phase only applies **reachability-preserving**
//! deltas (edges between already-reachable pairs — the engine absorbs
//! them) so the oracle stays valid while queries race the writes; a
//! structural delta is then applied in a sequential phase and the
//! changed answers re-verified. A separate test drives a deliberately
//! tiny admission queue past capacity and asserts backpressure arrives
//! as explicit 503s, never as a hang.

use parallel_scc::engine::Catalog;
use parallel_scc::graph::{DiGraph, V};
use parallel_scc::runtime::SplitMix64;
use parallel_scc::server::{start, CoalesceConfig, DispatchMode, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const N: usize = 512;
const EDGES: usize = 1200;

/// Deterministic sparse digraph plus its adjacency for the BFS oracle.
fn test_graph(seed: u64) -> (DiGraph, Vec<Vec<usize>>) {
    let mut rng = SplitMix64::new(seed);
    let mut edges = Vec::with_capacity(EDGES);
    while edges.len() < EDGES {
        let u = rng.next_below(N as u64) as V;
        let v = rng.next_below(N as u64) as V;
        if u != v {
            edges.push((u, v));
        }
    }
    let g = DiGraph::from_edges(N, &edges);
    let mut adj = vec![Vec::new(); N];
    for &(u, v) in &edges {
        adj[u as usize].push(v as usize);
    }
    (g, adj)
}

fn bfs_reaches(adj: &[Vec<usize>], u: usize, v: usize) -> bool {
    if u == v {
        return true;
    }
    let mut seen = vec![false; adj.len()];
    let mut queue = std::collections::VecDeque::from([u]);
    seen[u] = true;
    while let Some(x) = queue.pop_front() {
        for &y in &adj[x] {
            if y == v {
                return true;
            }
            if !seen[y] {
                seen[y] = true;
                queue.push_back(y);
            }
        }
    }
    false
}

/// Reads one HTTP/1.1 response off `stream`, returning `(status, body)`.
fn read_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> (u16, Vec<u8>) {
    loop {
        if let Some(head_len) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&buf[..head_len]).expect("UTF-8 head");
            let status: u16 = head
                .split(' ')
                .nth(1)
                .and_then(|s| s.parse().ok())
                .expect("status code in response line");
            let content_length: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .and_then(|v| v.parse().ok())
                .expect("Content-Length header");
            let body_start = head_len + 4;
            while buf.len() < body_start + content_length {
                read_more(stream, buf);
            }
            let body = buf[body_start..body_start + content_length].to_vec();
            buf.drain(..body_start + content_length);
            return (status, body);
        }
        read_more(stream, buf);
    }
}

fn read_more(stream: &mut TcpStream, buf: &mut Vec<u8>) {
    let mut chunk = [0u8; 4096];
    let n = stream.read(&mut chunk).expect("readable response");
    assert!(n > 0, "server closed the connection mid-response");
    buf.extend_from_slice(&chunk[..n]);
}

/// Sends a pipelined window of point queries on one connection and
/// returns the answers (asserting every response is a 200).
fn query_window(stream: &mut TcpStream, graph: &str, queries: &[(usize, usize)]) -> Vec<bool> {
    let mut out = Vec::new();
    for &(u, v) in queries {
        out.extend_from_slice(
            format!("GET /reach/{graph}?u={u}&v={v} HTTP/1.1\r\n\r\n").as_bytes(),
        );
    }
    stream.write_all(&out).expect("writable request");
    let mut buf = Vec::new();
    queries
        .iter()
        .map(|&(u, v)| {
            let (status, body) = read_response(stream, &mut buf);
            assert_eq!(
                status,
                200,
                "query ({u}, {v}) failed: {:?}",
                String::from_utf8_lossy(&body)
            );
            assert!(body == b"1" || body == b"0", "unexpected body {body:?}");
            body == b"1"
        })
        .collect()
}

#[test]
fn concurrent_queries_and_deltas_match_bfs_oracle() {
    let (g, adj) = test_graph(0xc0c0a);
    let catalog = Catalog::new();
    catalog.insert("conc", g);
    // A small batch target so grouping is observable even if the 1-CPU
    // scheduler serializes the clients.
    let config = ServerConfig {
        mode: DispatchMode::Coalesced(CoalesceConfig {
            batch_target: 32,
            ..CoalesceConfig::default()
        }),
        ..ServerConfig::default()
    };
    let handle = start(Arc::new(catalog), config).expect("server starts");
    let addr = handle.local_addr();

    // Reachable pairs for the delta writers: inserting u -> v where
    // u already reaches v is absorbed by the engine, so the oracle
    // adjacency never needs updating while queries race these writes.
    let mut absorbable = Vec::new();
    'outer: for u in 0..N {
        for &v in &adj[u] {
            for &w in &adj[v] {
                if w != u {
                    absorbable.push((u, w)); // u -> v -> w, insert u -> w
                    if absorbable.len() >= 64 {
                        break 'outer;
                    }
                }
            }
        }
    }
    assert!(absorbable.len() >= 16, "graph too sparse for delta pairs");

    const CLIENTS: usize = 8;
    const WINDOWS: usize = 12;
    const WINDOW: usize = 16;
    let total_queries = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..CLIENTS {
            let adj = &adj;
            let absorbable = &absorbable;
            workers.push(scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connectable");
                let mut rng = SplitMix64::new(0x5eed + t as u64);
                let mut asked = 0usize;
                for round in 0..WINDOWS {
                    let queries: Vec<(usize, usize)> = (0..WINDOW)
                        .map(|_| {
                            (rng.next_below(N as u64) as usize, rng.next_below(N as u64) as usize)
                        })
                        .collect();
                    let answers = query_window(&mut stream, "conc", &queries);
                    for (&(u, v), got) in queries.iter().zip(answers) {
                        assert_eq!(got, bfs_reaches(adj, u, v), "query ({u}, {v})");
                    }
                    asked += WINDOW;
                    // Half the clients interleave an absorbable delta
                    // between windows, racing everyone else's queries.
                    if t % 2 == 0 {
                        let (u, v) = absorbable[(t * WINDOWS + round) % absorbable.len()];
                        let body = format!("+ {u} {v}\n");
                        let req = format!(
                            "POST /delta/conc HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                            body.len()
                        );
                        stream.write_all(req.as_bytes()).expect("writable delta");
                        let mut buf = Vec::new();
                        let (status, reply) = read_response(&mut stream, &mut buf);
                        assert_eq!(status, 200, "{:?}", String::from_utf8_lossy(&reply));
                    }
                }
                asked
            }));
        }
        workers.into_iter().map(|w| w.join().expect("client thread")).sum::<usize>()
    });

    let stats = handle.port_stats("conc").expect("lane exists after first query");
    assert_eq!(stats.queries_coalesced, total_queries as u64);
    assert!(
        stats.batches_formed < stats.queries_coalesced / 2,
        "coalescing must have grouped queries: {} batches for {} queries",
        stats.batches_formed,
        stats.queries_coalesced
    );
    assert_eq!(stats.overloads, 0, "the default queue must not overload at this load");

    // ---- Sequential phase: a structural delta, then re-verify. ----
    // Find a pair with no path either way; inserting that edge splices
    // the condensation DAG and flips the answer.
    let (su, sv) = (0..N)
        .flat_map(|u| [(u, (u + N / 2) % N), (u, (u + N / 3) % N)])
        .find(|&(u, v)| u != v && !bfs_reaches(&adj, u, v) && !bfs_reaches(&adj, v, u))
        .expect("a mutually unreachable pair exists in a sparse digraph");
    let mut stream = TcpStream::connect(addr).expect("connectable");
    assert!(!query_window(&mut stream, "conc", &[(su, sv)])[0]);
    let body = format!("+ {su} {sv}\n");
    let req = format!("POST /delta/conc HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len());
    stream.write_all(req.as_bytes()).expect("writable delta");
    let mut buf = Vec::new();
    let (status, _) = read_response(&mut stream, &mut buf);
    assert_eq!(status, 200);
    let mut adj2 = adj.clone();
    adj2[su].push(sv);
    let mut rng = SplitMix64::new(0xafe);
    let recheck: Vec<(usize, usize)> = std::iter::once((su, sv))
        .chain(
            (0..64).map(|_| (rng.next_below(N as u64) as usize, rng.next_below(N as u64) as usize)),
        )
        .collect();
    let answers = query_window(&mut stream, "conc", &recheck);
    for (&(u, v), got) in recheck.iter().zip(answers) {
        assert_eq!(got, bfs_reaches(&adj2, u, v), "post-delta query ({u}, {v})");
    }

    handle.shutdown();
}

#[test]
fn overload_returns_503_instead_of_hanging() {
    let (g, adj) = test_graph(0xbad);
    let catalog = Catalog::new();
    catalog.insert("backpressure", g);
    // A queue that cannot hold even one client's window, with a batch
    // target and deadline high enough that the dispatcher sits on what
    // it has — admission control must shed the rest as 503s.
    let config = ServerConfig {
        mode: DispatchMode::Coalesced(CoalesceConfig {
            batch_target: 1000,
            deadline: Duration::from_millis(200),
            queue_cap: 4,
        }),
        ..ServerConfig::default()
    };
    let handle = start(Arc::new(catalog), config).expect("server starts");
    let addr = handle.local_addr();

    const CLIENTS: usize = 12;
    const WINDOWS: usize = 6;
    const WINDOW: usize = 2;
    let (oks, overloads) = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..CLIENTS {
            let adj = &adj;
            workers.push(scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connectable");
                let mut rng = SplitMix64::new(0xd05 + t as u64);
                let mut buf = Vec::new();
                let (mut oks, mut overloads) = (0usize, 0usize);
                for _ in 0..WINDOWS {
                    let queries: Vec<(usize, usize)> = (0..WINDOW)
                        .map(|_| {
                            (rng.next_below(N as u64) as usize, rng.next_below(N as u64) as usize)
                        })
                        .collect();
                    let mut out = Vec::new();
                    for &(u, v) in &queries {
                        out.extend_from_slice(
                            format!("GET /reach/backpressure?u={u}&v={v} HTTP/1.1\r\n\r\n")
                                .as_bytes(),
                        );
                    }
                    stream.write_all(&out).expect("writable request");
                    for &(u, v) in &queries {
                        let (status, body) = read_response(&mut stream, &mut buf);
                        match status {
                            200 => {
                                assert_eq!(
                                    body == b"1",
                                    bfs_reaches(adj, u, v),
                                    "query ({u}, {v})"
                                );
                                oks += 1;
                            }
                            503 => overloads += 1,
                            other => panic!("unexpected status {other}"),
                        }
                    }
                }
                (oks, overloads)
            }));
        }
        workers
            .into_iter()
            .map(|w| w.join().expect("client thread"))
            .fold((0, 0), |(a, b), (c, d)| (a + c, b + d))
    });

    assert_eq!(oks + overloads, CLIENTS * WINDOWS * WINDOW, "every request got a response");
    assert!(overloads > 0, "a 4-slot queue under {CLIENTS} clients must shed load");
    assert!(oks > 0, "admission control must still serve in-capacity windows");
    // The server counts rejected *submissions* (one per shed window, up
    // to WINDOW queries each); the clients count per-query 503s.
    let stats = handle.port_stats("backpressure").expect("lane exists");
    assert!(
        stats.overloads > 0
            && stats.overloads <= overloads as u64
            && overloads as u64 <= stats.overloads * WINDOW as u64,
        "server-side overload counter must agree with the {} client 503s \
         (counted {} shed submissions of up to {WINDOW} queries)",
        overloads,
        stats.overloads
    );
    handle.shutdown();
}

#[test]
fn direct_mode_serves_correct_answers() {
    let (g, adj) = test_graph(0xd12ec7);
    let catalog = Catalog::new();
    catalog.insert("direct", g);
    let config = ServerConfig { mode: DispatchMode::Direct, ..ServerConfig::default() };
    let handle = start(Arc::new(catalog), config).expect("server starts");
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        for t in 0..4usize {
            let adj = &adj;
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connectable");
                let mut rng = SplitMix64::new(0xd1 + t as u64);
                let queries: Vec<(usize, usize)> = (0..96)
                    .map(|_| (rng.next_below(N as u64) as usize, rng.next_below(N as u64) as usize))
                    .collect();
                let answers = query_window(&mut stream, "direct", &queries);
                for (&(u, v), got) in queries.iter().zip(answers) {
                    assert_eq!(got, bfs_reaches(adj, u, v), "query ({u}, {v})");
                }
            });
        }
    });
    assert!(handle.port_stats("direct").is_none(), "direct mode has no lane to report");
    handle.shutdown();
}

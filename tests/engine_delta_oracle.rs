//! Acceptance test for the catalog's delta-ingestion path on an RMAT
//! graph: random edge-insertion deltas applied through
//! `Catalog::apply_delta` must answer a 10 000-query batch identically to
//! a from-scratch index over the merged graph — and the tiered repair
//! planner must provably take the right path (an in-SCC/already-reachable
//! delta keeps the very same `Arc<Index>` instance, a component-merging
//! delta is repaired by the region tier without an SCC run over the
//! whole graph).

use parallel_scc::engine::{BuildCause, Delta, DeltaOutcome};
use parallel_scc::prelude::*;
use std::sync::Arc;

fn random_queries(n: usize, count: usize, seed: u64) -> Vec<(V, V)> {
    let mut rng = pscc_runtime::SplitMix64::new(seed);
    (0..count).map(|_| (rng.next_below(n as u64) as V, rng.next_below(n as u64) as V)).collect()
}

#[test]
fn rmat_deltas_match_from_scratch_rebuild() {
    // 2^15 = 32 768 vertices keeps the double index build fast while the
    // graph still has a rich SCC structure.
    let g = parallel_scc::graph::generators::rmat::rmat_digraph(15, 98_304, 0xde17a);
    let n = g.n();

    let catalog = Catalog::new();
    catalog.insert("g", g.clone());

    // Random insertion delta (sources/targets anywhere in the graph).
    let mut rng = pscc_runtime::SplitMix64::new(0x0dd5);
    let inserted: Vec<(V, V)> =
        (0..2000).map(|_| (rng.next_below(n as u64) as V, rng.next_below(n as u64) as V)).collect();
    let report =
        catalog.apply_delta("g", &Delta::from_parts(inserted.clone(), Vec::new())).unwrap();
    assert!(report.inserted > 0);

    // From-scratch oracle: rebuild the graph and a fresh index.
    let mut edges: Vec<(V, V)> = g.out_csr().edges().collect();
    edges.extend_from_slice(&inserted);
    let merged = DiGraph::from_edges(n, &edges);
    assert_eq!(catalog.graph("g").unwrap().out_csr(), merged.out_csr());
    let scratch = ReachIndex::build(&merged);

    let queries = random_queries(n, 10_000, 0xbeef);
    let got = catalog.answer_batch("g", &queries).unwrap();
    for (i, &(u, v)) in queries.iter().enumerate() {
        assert_eq!(got[i], scratch.reaches(u, v), "query ({u}, {v})");
    }
}

#[test]
fn rmat_absorbable_delta_keeps_index_merging_delta_repairs_in_place() {
    let g = parallel_scc::graph::generators::rmat::rmat_digraph(14, 65_536, 0xcafe);
    let n = g.n();
    let catalog = Catalog::new();
    catalog.insert("g", g);
    let before = catalog.index("g").unwrap();

    // Harvest pairs from answered queries: reachable ones make an
    // absorbable delta; a one-way pair reversed makes a merging delta.
    let queries = random_queries(n, 4_000, 0x5eed);
    let answers = catalog.answer_batch("g", &queries).unwrap();
    let absorbable: Vec<(V, V)> = queries
        .iter()
        .zip(&answers)
        .filter(|&(&(u, v), &a)| a && u != v)
        .map(|(&q, _)| q)
        .take(100)
        .collect();
    assert!(!absorbable.is_empty(), "RMAT batch should contain reachable pairs");
    let merging = queries
        .iter()
        .zip(&answers)
        .find(|&(&(u, v), &a)| a && u != v && !before.reaches(v, u))
        .map(|(&(u, v), _)| (v, u))
        .expect("RMAT batch should contain a one-way pair");

    // Absorbable delta: same Arc<Index> instance, no rebuild.
    let report = catalog.apply_delta("g", &Delta::from_parts(absorbable, Vec::new())).unwrap();
    assert_eq!(report.outcome, DeltaOutcome::Absorbed);
    let kept = catalog.index("g").unwrap();
    assert!(Arc::ptr_eq(&before, &kept), "absorbed delta must keep the index instance");
    assert_eq!(kept.stats().absorbed_deltas, 1);
    assert_eq!(kept.stats().built_by, BuildCause::Fresh);

    // Component-merging delta: a patched index from the region tier (or,
    // if the merge region outgrows the planner budget on this graph, the
    // cost-bounded full rebuild) — never a silent wrong answer.
    let mut d = Delta::new();
    d.insert(merging.0, merging.1);
    let report = catalog.apply_delta("g", &d).unwrap();
    let repaired = catalog.index("g").unwrap();
    assert!(!Arc::ptr_eq(&before, &repaired), "merging delta must produce a new index");
    match report.outcome {
        DeltaOutcome::RegionRecomputed => {
            assert_eq!(repaired.stats().built_by, BuildCause::RegionRecompute);
            assert_eq!(repaired.stats().region_recomputes, 1);
        }
        DeltaOutcome::Rebuilt => {
            assert_eq!(repaired.stats().built_by, BuildCause::DeltaRebuild);
        }
        other => panic!("merging delta took an impossible path: {other:?}"),
    }
    // Components did merge: strictly fewer than before.
    assert!(repaired.num_components() < before.num_components());
    // The merge is visible: the reversed pair became mutually reachable.
    assert_eq!(catalog.reaches("g", merging.1, merging.0), Some(true));
    assert_eq!(catalog.reaches("g", merging.0, merging.1), Some(true));
}

/// The region tier must answer the same 10k-query batch as a from-scratch
/// index after a cycle-merging insertion on RMAT.
#[test]
fn rmat_region_recompute_matches_from_scratch_rebuild() {
    let g = parallel_scc::graph::generators::rmat::rmat_digraph(14, 65_536, 0x4e610);
    let n = g.n();
    let catalog = Catalog::new();
    catalog.insert("g", g.clone());
    let before = catalog.index("g").unwrap();

    // Reverse an existing cross-component edge: guaranteed to close at
    // least one cycle through the two endpoint components.
    let queries = random_queries(n, 4_000, 0x7ea);
    let answers = catalog.answer_batch("g", &queries).unwrap();
    let (u, v) = queries
        .iter()
        .zip(&answers)
        .find(|&(&(u, v), &a)| a && u != v && !before.reaches(v, u))
        .map(|(&q, _)| q)
        .expect("RMAT batch should contain a one-way pair");

    let mut d = Delta::new();
    d.insert(v, u);
    let report = catalog.apply_delta("g", &d).unwrap();
    assert!(
        matches!(report.outcome, DeltaOutcome::RegionRecomputed | DeltaOutcome::Rebuilt),
        "unexpected outcome {:?}",
        report.outcome
    );

    let mut edges: Vec<(V, V)> = g.out_csr().edges().collect();
    edges.push((v, u));
    let scratch = ReachIndex::build(&DiGraph::from_edges(n, &edges));
    let check = random_queries(n, 10_000, 0xc4ec4);
    let got = catalog.answer_batch("g", &check).unwrap();
    for (i, &(a, b)) in check.iter().enumerate() {
        assert_eq!(got[i], scratch.reaches(a, b), "query ({a}, {b})");
    }
}

//! Property-based crash-recovery fuzzing of the durable store: corrupt or
//! truncate the write-ahead log at an arbitrary byte offset and recovery
//! must (a) never panic, (b) recover **exactly** the prefix of fsynced
//! delta batches untouched by the damage, and (c) answer reachability
//! queries that match a BFS oracle on the recovered graph.

use proptest::prelude::*;

use parallel_scc::engine::{Catalog, Delta};
use parallel_scc::prelude::*;

mod common;
use common::bfs_reaches;

/// Unique temp dir per call (parallel test threads must not collide).
fn tmpdir(tag: u64) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    let serial = UNIQUE.fetch_add(1, Ordering::Relaxed);
    let mut p = std::env::temp_dir();
    p.push(format!("pscc_store_fuzz_{tag}_{serial}_{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// Per-record WAL end offsets plus cumulative graph states:
/// `states[j]` = graph after `j` logged records, `ends[j]` = byte offset
/// where record `j + 1` finishes.
type History = (std::path::PathBuf, Vec<u64>, Vec<std::sync::Arc<DiGraph>>);
/// One generated delta batch: `(insertions, deletions)`.
type RawDelta = (Vec<(V, V)>, Vec<(V, V)>);

/// Builds a durable catalog, applies `deltas`, and records the cumulative
/// graph plus WAL length after each *logged* batch (NoOps append
/// nothing).
fn durable_history(
    dir: &std::path::Path,
    n: usize,
    base_edges: &[(V, V)],
    deltas: &[RawDelta],
) -> History {
    let cat = Catalog::new();
    cat.insert("g", DiGraph::from_edges(n, base_edges));
    cat.persist_to("g", dir).unwrap();
    let wal = dir.join("g").join("wal.log");
    let mut ends = Vec::new();
    let mut states = vec![cat.graph("g").unwrap()];
    let mut last_len = std::fs::metadata(&wal).unwrap().len();
    for (ins, del) in deltas {
        cat.apply_delta("g", &Delta::from_parts(ins.clone(), del.clone())).unwrap();
        let len = std::fs::metadata(&wal).unwrap().len();
        if len != last_len {
            // One record was fsynced; remember its end and the state.
            ends.push(len);
            states.push(cat.graph("g").unwrap());
            last_len = len;
        }
    }
    (wal, ends, states)
}

/// One case vertex/edge/delta generator material.
fn edge_vec(n: usize, raw: &[(usize, usize)]) -> Vec<(V, V)> {
    raw.iter().map(|&(u, v)| ((u % n) as V, (v % n) as V)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flip one byte anywhere in the log (header included): recovery
    /// never panics, and when the damage lands past the header it
    /// recovers exactly the records untouched by it.
    #[test]
    fn wal_byte_flip_recovers_the_exact_prefix(
        seed in 0u64..1_000_000,
        n in 6usize..24,
        raw_base in proptest::collection::vec((0usize..64, 0usize..64), 4..40),
        raw_deltas in proptest::collection::vec(
            (
                proptest::collection::vec((0usize..64, 0usize..64), 0..6),
                proptest::collection::vec((0usize..64, 0usize..64), 0..3),
            ),
            1..6,
        ),
        flip_pos in 0usize..4096,
        flip_xor in 1u8..255,
    ) {
        let dir = tmpdir(seed);
        let base = edge_vec(n, &raw_base);
        let deltas: Vec<RawDelta> =
            raw_deltas.iter().map(|(i, d)| (edge_vec(n, i), edge_vec(n, d))).collect();
        let (wal, ends, states) = durable_history(&dir, n, &base, &deltas);
        let mut bytes = std::fs::read(&wal).unwrap();
        let pos = flip_pos % bytes.len();
        bytes[pos] ^= flip_xor;
        std::fs::write(&wal, &bytes).unwrap();

        let reopened = Catalog::open(&dir); // must not panic, ever
        if pos < 8 {
            // Damage inside the log header is lost data, reported loudly.
            prop_assert!(reopened.is_err());
        } else {
            let cat = reopened.expect("recovery from body damage succeeds");
            // Records whose end lies at or before the flipped byte are
            // untouched; the record containing it (and everything after,
            // order matters) is discarded.
            let j = ends.iter().filter(|&&e| e <= pos as u64).count();
            let got = cat.graph("g").unwrap();
            prop_assert_eq!(got.out_csr(), states[j].out_csr());
            // Post-recovery answers agree with a BFS oracle.
            for k in 0..40u64 {
                let u = (pscc_runtime::hash64(seed ^ k) as usize % n) as V;
                let v = (pscc_runtime::hash64(seed ^ k ^ 0x9e37) as usize % n) as V;
                prop_assert_eq!(cat.reaches("g", u, v), Some(bfs_reaches(&got, u, v)));
            }
        }
        std::fs::remove_dir_all(dir).ok();
    }

    /// Truncate the log at an arbitrary length: recovery never panics and
    /// keeps exactly the fully-contained records.
    #[test]
    fn wal_truncation_recovers_the_exact_prefix(
        seed in 1_000_000u64..2_000_000,
        n in 6usize..24,
        raw_base in proptest::collection::vec((0usize..64, 0usize..64), 4..40),
        raw_deltas in proptest::collection::vec(
            (
                proptest::collection::vec((0usize..64, 0usize..64), 1..6),
                proptest::collection::vec((0usize..64, 0usize..64), 0..3),
            ),
            1..6,
        ),
        cut in 0usize..4096,
    ) {
        let dir = tmpdir(seed);
        let base = edge_vec(n, &raw_base);
        let deltas: Vec<RawDelta> =
            raw_deltas.iter().map(|(i, d)| (edge_vec(n, i), edge_vec(n, d))).collect();
        let (wal, ends, states) = durable_history(&dir, n, &base, &deltas);
        let bytes = std::fs::read(&wal).unwrap();
        let cut = cut % (bytes.len() + 1);
        std::fs::write(&wal, &bytes[..cut]).unwrap();

        let reopened = Catalog::open(&dir); // must not panic, ever
        if cut < 8 {
            prop_assert!(reopened.is_err(), "header loss must be loud");
        } else {
            let cat = reopened.expect("recovery from a torn tail succeeds");
            let j = ends.iter().filter(|&&e| e <= cut as u64).count();
            let got = cat.graph("g").unwrap();
            prop_assert_eq!(got.out_csr(), states[j].out_csr());
            prop_assert_eq!(
                std::fs::metadata(&wal).unwrap().len(),
                if j == 0 { 8 } else { ends[j - 1] },
                "torn tail physically truncated"
            );
        }
        std::fs::remove_dir_all(dir).ok();
    }

    /// Corrupting the snapshot never panics: recovery either succeeds on
    /// a still-valid file or fails with an error — silent graph
    /// fabrication is the only forbidden outcome.
    #[test]
    fn snapshot_corruption_never_panics(
        seed in 2_000_000u64..3_000_000,
        n in 6usize..24,
        raw_base in proptest::collection::vec((0usize..64, 0usize..64), 4..40),
        flip_pos in 0usize..4096,
        flip_xor in 1u8..255,
    ) {
        let dir = tmpdir(seed);
        let base = edge_vec(n, &raw_base);
        let (_, _, states) = durable_history(&dir, n, &base, &[]);
        let store_dir = dir.join("g");
        let snap = std::fs::read_dir(&store_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.file_name().unwrap().to_str().unwrap().starts_with("snapshot-"))
            .expect("snapshot exists");
        let mut bytes = std::fs::read(&snap).unwrap();
        let pos = flip_pos % bytes.len();
        bytes[pos] ^= flip_xor;
        std::fs::write(&snap, &bytes).unwrap();
        match Catalog::open(&dir) {
            Ok(cat) => {
                // Only possible if the flip was somehow survivable; then
                // the graph must still be the true one.
                prop_assert_eq!(cat.graph("g").unwrap().out_csr(), states[0].out_csr());
            }
            Err(e) => prop_assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
        }
        std::fs::remove_dir_all(dir).ok();
    }
}

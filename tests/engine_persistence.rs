//! Durability acceptance tests for the `pscc-store` integration: a
//! catalog that persisted its graphs answers **identically** after a
//! simulated kill-and-restart (drop + [`Catalog::open`]), including when
//! the write-ahead log was torn mid-record by the crash.

use parallel_scc::engine::{Catalog, Delta};
use parallel_scc::prelude::*;

mod common;
use common::bfs_reaches;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pscc_persist_test_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn random_queries(n: usize, count: usize, seed: u64) -> Vec<(V, V)> {
    let mut rng = pscc_runtime::SplitMix64::new(seed);
    (0..count).map(|_| (rng.next_below(n as u64) as V, rng.next_below(n as u64) as V)).collect()
}

/// The acceptance criterion: after `apply_delta` returns, a process
/// restart recovers a catalog whose 10k-query RMAT answers are identical
/// to the never-restarted instance.
#[test]
fn restart_preserves_10k_rmat_answers() {
    let dir = tmpdir("rmat10k");
    let g = parallel_scc::graph::generators::rmat::rmat_digraph(13, 60_000, 0xd00d);
    let n = g.n();
    let live = Catalog::new();
    live.insert("serve", g);
    live.persist_to("serve", &dir).unwrap();

    // A mixed delta history: inserts that absorb, a back edge that forces
    // a rebuild, deletions, and an update before any index exists.
    let mut rng = pscc_runtime::SplitMix64::new(0xfeed);
    let mut pair = || (rng.next_below(n as u64) as V, rng.next_below(n as u64) as V);
    let pre_index = Delta::from_parts((0..64).map(|_| pair()).collect(), vec![(0, 1)]);
    live.apply_delta("serve", &pre_index).unwrap(); // Deferred: no index yet
    let _ = live.index("serve").unwrap();
    for round in 0..4 {
        let ins: Vec<(V, V)> = (0..32).map(|_| pair()).collect();
        let del: Vec<(V, V)> = if round % 2 == 0 {
            live.graph("serve").unwrap().out_csr().edges().skip(round * 11).take(3).collect()
        } else {
            Vec::new()
        };
        live.apply_delta("serve", &Delta::from_parts(ins, del)).unwrap();
    }

    let queries = random_queries(n, 10_000, 0xba7c);
    let want = live.answer_batch("serve", &queries).unwrap();
    let want_graph = live.graph("serve").unwrap();
    let generation = live.generation("serve").unwrap();
    drop(live); // "kill" the process

    let back = Catalog::open(&dir).unwrap(); // "restart"
    assert_eq!(back.graph("serve").unwrap().out_csr(), want_graph.out_csr());
    assert_eq!(back.generation("serve"), Some(generation));
    let got = back.answer_batch("serve", &queries).unwrap();
    assert_eq!(got, want, "restarted catalog must answer identically");
    std::fs::remove_dir_all(dir).ok();
}

/// Recovery from a torn WAL tail: garbage appended past the last fsynced
/// record (a crash mid-append) is truncated, and the catalog recovers
/// exactly the fsynced prefix.
#[test]
fn torn_wal_tail_recovers_by_truncation() {
    let dir = tmpdir("torntail");
    let g = DiGraph::from_edges(64, &(0..63).map(|i| (i as V, i as V + 1)).collect::<Vec<_>>());
    let cat = Catalog::new();
    cat.insert("g", g);
    cat.persist_to("g", &dir).unwrap();
    let wal = dir.join("g").join("wal.log");

    // Apply three durable deltas, remembering the graph and the log
    // length after each — the record boundaries a crash can tear between.
    let mut states = Vec::new();
    let mut ends = Vec::new();
    for i in 0..3u32 {
        let mut d = Delta::new();
        d.insert(63, i * 7); // back edges: each effective
        cat.apply_delta("g", &d).unwrap();
        states.push(cat.graph("g").unwrap());
        ends.push(std::fs::metadata(&wal).unwrap().len());
    }
    drop(cat);
    let full = std::fs::read(&wal).unwrap();

    // Crash flavor 1: garbage appended after the last full record.
    let mut torn = full.clone();
    torn.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x01]);
    std::fs::write(&wal, &torn).unwrap();
    let back = Catalog::open(&dir).unwrap();
    assert_eq!(back.graph("g").unwrap().out_csr(), states[2].out_csr());
    assert_eq!(std::fs::metadata(&wal).unwrap().len(), ends[2], "tail truncated on disk");
    drop(back);

    // Crash flavor 2: the third record itself is torn (half-written).
    std::fs::write(&wal, &full[..ends[1] as usize + 9]).unwrap();
    let back = Catalog::open(&dir).unwrap();
    assert_eq!(
        back.graph("g").unwrap().out_csr(),
        states[1].out_csr(),
        "recovery yields exactly the fsynced prefix"
    );
    // The recovered catalog accepts new durable deltas after truncation.
    let mut d = Delta::new();
    d.insert(63, 33);
    back.apply_delta("g", &d).unwrap();
    drop(back);
    let again = Catalog::open(&dir).unwrap();
    assert!(again.graph("g").unwrap().out_neighbors(63).contains(&33));
    std::fs::remove_dir_all(dir).ok();
}

/// A durable entry keeps answering correctly across restart + compaction:
/// the background compactor rewrites the store, and a reopen from the
/// compacted form matches a BFS oracle.
#[test]
fn compacted_store_reopens_consistently() {
    let dir = tmpdir("compactreopen");
    let cat = Catalog::with_compaction(parallel_scc::engine::CompactionPolicy {
        wal_factor: 0,
        min_wal_bytes: 0,
    });
    let g = parallel_scc::graph::generators::random::gnm_digraph(500, 1500, 3);
    cat.insert("g", g);
    cat.persist_to("g", &dir).unwrap();
    let mut rng = pscc_runtime::SplitMix64::new(0xc0ffee);
    for _ in 0..6 {
        let ins: Vec<(V, V)> =
            (0..20).map(|_| (rng.next_below(500) as V, rng.next_below(500) as V)).collect();
        cat.apply_delta("g", &Delta::from_parts(ins, Vec::new())).unwrap();
    }
    cat.flush_maintenance();
    let want = cat.graph("g").unwrap();
    drop(cat);

    let back = Catalog::open(&dir).unwrap();
    let got = back.graph("g").unwrap();
    assert_eq!(got.out_csr(), want.out_csr());
    // Spot-check recovered answers against a BFS oracle.
    for i in 0..100u64 {
        let (u, v) = (
            pscc_runtime::hash64(i) as usize % got.n(),
            pscc_runtime::hash64(i ^ 0xabc) as usize % got.n(),
        );
        assert_eq!(
            back.reaches("g", u as V, v as V),
            Some(bfs_reaches(&got, u as V, v as V)),
            "query ({u}, {v})"
        );
    }
    std::fs::remove_dir_all(dir).ok();
}

//! Concurrency stress tests: run the concurrent structures and algorithms
//! under oversubscribed thread pools (more workers than cores) so genuine
//! interleavings occur even on narrow CI hosts.

use parallel_scc::prelude::*;
use parallel_scc::runtime::{par_for, with_threads};
use parallel_scc::scc::verify::same_partition;
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn bag_under_oversubscribed_pool() {
    with_threads(8, || {
        let n = 300_000;
        let bag: HashBag<u32> = HashBag::new(n);
        for round in 0..3 {
            par_for(n, |i| bag.insert(i as u32));
            let got = bag.extract_all();
            assert_eq!(got.len(), n, "round {round}");
        }
    });
}

#[test]
fn bag_interleaved_sizes_stress() {
    // Alternate tiny and large rounds to exercise chunk-cursor resets.
    with_threads(4, || {
        let bag: HashBag<u32> = HashBag::new(100_000);
        for round in 0..20 {
            let k = if round % 2 == 0 { 17 } else { 60_000 };
            par_for(k, |i| bag.insert(i as u32));
            assert_eq!(bag.extract_all().len(), k, "round {round}");
        }
    });
}

#[test]
fn table_concurrent_insert_contains_mix() {
    use parallel_scc::table::{Insert, PairTable};
    with_threads(8, || {
        let t = PairTable::with_capacity(200_000);
        let added = AtomicUsize::new(0);
        // Each key contended by 4 workers; membership probes interleave.
        par_for(400_000, |i| {
            let key = (i / 4) as u64;
            if t.insert(key) == Insert::Added {
                added.fetch_add(1, Ordering::Relaxed);
            }
            // Reads racing writes must never see phantom keys.
            assert!(!t.contains(1_000_000 + key));
        });
        assert_eq!(added.load(Ordering::Relaxed), 100_000);
        assert_eq!(t.len(), 100_000);
    });
}

#[test]
fn union_find_oversubscribed_agrees_with_oracle() {
    use parallel_scc::cc::ConcurrentUnionFind;
    with_threads(8, || {
        let n = 50_000;
        let uf = ConcurrentUnionFind::new(n);
        // Star unions from many threads at once.
        par_for(n - 1, |i| {
            uf.unite(0, i as u32 + 1);
        });
        let labels = uf.labels();
        assert!(labels.iter().all(|&l| l == 0));
    });
}

#[test]
fn scc_partition_stable_across_pool_widths() {
    let g = parallel_scc::graph::generators::random::gnm_digraph(2_000, 8_000, 77);
    let want = tarjan_scc(&g);
    for threads in [1usize, 2, 4, 8] {
        let got = with_threads(threads, || parallel_scc(&g, &SccConfig::default()));
        assert!(same_partition(&got.labels, &want), "threads={threads}");
        // Deterministic labeling must hold regardless of pool width.
        let again = with_threads(threads, || parallel_scc(&g, &SccConfig::default()));
        assert_eq!(got.labels, again.labels, "threads={threads} nondeterministic");
    }
}

#[test]
fn lelists_exact_under_oversubscription() {
    let g = parallel_scc::graph::generators::random::gnm_digraph(400, 1600, 5).symmetrize();
    let perm = parallel_scc::runtime::random_permutation(g.n(), 9);
    let want = cohen_le_lists(&g, &perm);
    for threads in [2usize, 8] {
        let got = with_threads(threads, || {
            parallel_scc::lelists::bgss::le_lists_with_priority(
                &g,
                &perm,
                &LeListsConfig::default(),
            )
            .0
        });
        assert_eq!(got, want, "threads={threads}");
    }
}

#[test]
fn kcore_stable_across_pool_widths() {
    use parallel_scc::apps::{core_numbers, core_numbers_sequential};
    let g = parallel_scc::graph::generators::random::gnm_digraph(1_000, 6_000, 13).symmetrize();
    let want = core_numbers_sequential(&g);
    for threads in [1usize, 4, 8] {
        let got = with_threads(threads, || core_numbers(&g));
        assert_eq!(got, want, "threads={threads}");
    }
}

#[test]
fn repeated_runs_shake_out_races() {
    // Same computation many times under a wide pool: any latent race shows
    // up as a partition difference eventually.
    let g = parallel_scc::graph::generators::lattice::lattice_sqr(25, 25, 3);
    let want = tarjan_scc(&g);
    with_threads(8, || {
        for run in 0..25 {
            let got = parallel_scc(&g, &SccConfig::default());
            assert!(same_partition(&got.labels, &want), "run {run}");
        }
    });
}

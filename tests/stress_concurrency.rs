//! Concurrency stress tests: run the concurrent structures and algorithms
//! under oversubscribed thread pools (more workers than cores) so genuine
//! interleavings occur even on narrow CI hosts.

use parallel_scc::engine::Delta;
use parallel_scc::prelude::*;
use parallel_scc::runtime::{par_for, with_threads};
use parallel_scc::scc::verify::same_partition;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn bag_under_oversubscribed_pool() {
    with_threads(8, || {
        let n = 300_000;
        let bag: HashBag<u32> = HashBag::new(n);
        for round in 0..3 {
            par_for(n, |i| bag.insert(i as u32));
            let got = bag.extract_all();
            assert_eq!(got.len(), n, "round {round}");
        }
    });
}

#[test]
fn bag_interleaved_sizes_stress() {
    // Alternate tiny and large rounds to exercise chunk-cursor resets.
    with_threads(4, || {
        let bag: HashBag<u32> = HashBag::new(100_000);
        for round in 0..20 {
            let k = if round % 2 == 0 { 17 } else { 60_000 };
            par_for(k, |i| bag.insert(i as u32));
            assert_eq!(bag.extract_all().len(), k, "round {round}");
        }
    });
}

#[test]
fn table_concurrent_insert_contains_mix() {
    use parallel_scc::table::{Insert, PairTable};
    with_threads(8, || {
        let t = PairTable::with_capacity(200_000);
        let added = AtomicUsize::new(0);
        // Each key contended by 4 workers; membership probes interleave.
        par_for(400_000, |i| {
            let key = (i / 4) as u64;
            if t.insert(key) == Insert::Added {
                added.fetch_add(1, Ordering::Relaxed);
            }
            // Reads racing writes must never see phantom keys.
            assert!(!t.contains(1_000_000 + key));
        });
        assert_eq!(added.load(Ordering::Relaxed), 100_000);
        assert_eq!(t.len(), 100_000);
    });
}

#[test]
fn union_find_oversubscribed_agrees_with_oracle() {
    use parallel_scc::cc::ConcurrentUnionFind;
    with_threads(8, || {
        let n = 50_000;
        let uf = ConcurrentUnionFind::new(n);
        // Star unions from many threads at once.
        par_for(n - 1, |i| {
            uf.unite(0, i as u32 + 1);
        });
        let labels = uf.labels();
        assert!(labels.iter().all(|&l| l == 0));
    });
}

#[test]
fn scc_partition_stable_across_pool_widths() {
    let g = parallel_scc::graph::generators::random::gnm_digraph(2_000, 8_000, 77);
    let want = tarjan_scc(&g);
    for threads in [1usize, 2, 4, 8] {
        let got = with_threads(threads, || parallel_scc(&g, &SccConfig::default()));
        assert!(same_partition(&got.labels, &want), "threads={threads}");
        // Deterministic labeling must hold regardless of pool width.
        let again = with_threads(threads, || parallel_scc(&g, &SccConfig::default()));
        assert_eq!(got.labels, again.labels, "threads={threads} nondeterministic");
    }
}

#[test]
fn lelists_exact_under_oversubscription() {
    let g = parallel_scc::graph::generators::random::gnm_digraph(400, 1600, 5).symmetrize();
    let perm = parallel_scc::runtime::random_permutation(g.n(), 9);
    let want = cohen_le_lists(&g, &perm);
    for threads in [2usize, 8] {
        let got = with_threads(threads, || {
            parallel_scc::lelists::bgss::le_lists_with_priority(
                &g,
                &perm,
                &LeListsConfig::default(),
            )
            .0
        });
        assert_eq!(got, want, "threads={threads}");
    }
}

#[test]
fn kcore_stable_across_pool_widths() {
    use parallel_scc::apps::{core_numbers, core_numbers_sequential};
    let g = parallel_scc::graph::generators::random::gnm_digraph(1_000, 6_000, 13).symmetrize();
    let want = core_numbers_sequential(&g);
    for threads in [1usize, 4, 8] {
        let got = with_threads(threads, || core_numbers(&g));
        assert_eq!(got, want, "threads={threads}");
    }
}

/// An IndexConfig that makes index builds take long enough for another
/// thread to reliably land work mid-build: force the interval tier (no
/// bitset shortcut) with many randomized labelings over a large DAG.
fn slow_build_config(labelings: usize) -> IndexConfig {
    IndexConfig { bitset_budget_bytes: 0, labelings, exception_cap: 0, ..IndexConfig::default() }
}

/// Closes the ROADMAP open item, part 1: while `apply_delta` is merging
/// and rebuilding **off-lock**, queries against the same graph keep being
/// answered from the old index instead of stalling for the rebuild.
#[test]
fn queries_answered_from_old_index_during_delta_rebuild() {
    // Sparse digraph -> a DAG with ~n components, so the forced interval
    // tier rebuild costs a long, measurable time.
    let n = 200_000usize;
    let g = parallel_scc::graph::generators::random::gnm_digraph(n, 300_000, 42);
    // An edge absent from the graph, so the insertion is effective.
    let absent_edge = (0..n as V)
        .map(|k| ((k.wrapping_mul(7919)) % n as V, (k.wrapping_mul(104_729) + 1) % n as V))
        .find(|&(u, v)| u != v && g.out_neighbors(u).binary_search(&v).is_err())
        .expect("a sparse graph has absent pairs");
    let cat = Arc::new(Catalog::new());
    cat.insert_with_config(
        "g",
        g,
        slow_build_config(10),
        parallel_scc::engine::BatchOptions::default(),
    );
    let index = cat.index("g").expect("eager first build");
    // An intra-SCC edge is always a *structural* deletion (only the
    // split check could classify it) — mixed with the insertion below,
    // the planner must price the delta out to a full rebuild.
    let doomed_edge = cat
        .graph("g")
        .expect("registered")
        .out_csr()
        .edges()
        .find(|&(u, v)| u != v && index.comp(u) == index.comp(v))
        .expect("gnm(200k, 300k) has a giant SCC with intra edges");
    drop(index);

    let rebuild_done = Arc::new(AtomicBool::new(false));
    let writer = {
        let cat = cat.clone();
        let done = rebuild_done.clone();
        std::thread::spawn(move || {
            // A structural deletion mixed with an effective insertion is
            // priced out of every localized tier (deletions alone now
            // repair in place): a full (slow) rebuild, guaranteed.
            let mut d = Delta::new();
            d.delete(doomed_edge.0, doomed_edge.1).insert(absent_edge.0, absent_edge.1);
            let report = cat.apply_delta("g", &d).expect("valid delta");
            done.store(true, Ordering::Release);
            report
        })
    };

    // While the writer merges + rebuilds off-lock, queries must keep
    // flowing. The witness is the entry's `rebuild_in_flight` telemetry
    // gauge (1 exactly while the off-lock `Index::build` runs): a batch
    // that starts *and* finishes with the gauge raised was served in its
    // entirety from the old index, with no timing heuristics involved.
    let in_flight = parallel_scc::telemetry::gauge("pscc_catalog_rebuild_in_flight{graph=\"g\"}");
    let queries: Vec<(V, V)> = (0..256).map(|i| (i as V, (i * 7 + 1) as V)).collect();
    let mut batches_during_rebuild = 0u64;
    while !rebuild_done.load(Ordering::Acquire) {
        let raised_before = in_flight.get() > 0;
        let answers = cat.answer_batch("g", &queries).expect("registered");
        assert_eq!(answers.len(), queries.len());
        if raised_before && in_flight.get() > 0 {
            batches_during_rebuild += 1;
        }
    }
    let report = writer.join().expect("writer thread");
    assert_eq!(report.outcome, parallel_scc::engine::DeltaOutcome::Rebuilt);
    assert!(
        batches_during_rebuild > 0,
        "no batch was served while the rebuild gauge was raised \
         (old behavior: merge under the entry mutex)"
    );
    assert_eq!(in_flight.get(), 0, "the gauge must drop once the rebuild installs");
    // After the swap, answers reflect the deletion-rebuilt index.
    assert_eq!(
        cat.index("g").unwrap().stats().built_by,
        parallel_scc::engine::BuildCause::DeltaRebuild
    );
}

/// Closes the ROADMAP open item, part 2: an `apply_delta` racing an
/// off-lock (lazy first-query) index build is detected via the
/// generation counter — the stale build is discarded and retried, and
/// the delta is never lost.
#[test]
fn racing_delta_during_off_lock_build_is_detected_not_lost() {
    let n = 200_000usize;
    let mut raced = false;
    for attempt in 0..10u64 {
        let name = format!("g{attempt}");
        let g = parallel_scc::graph::generators::random::gnm_digraph(n, 300_000, 100 + attempt);
        // An edge absent from the graph: the delta is always effective.
        let mut rng = pscc_runtime::SplitMix64::new(0x5eed ^ attempt);
        let new_edge = loop {
            let (u, v) = (rng.next_below(n as u64) as V, rng.next_below(n as u64) as V);
            if u != v && g.out_neighbors(u).binary_search(&v).is_err() {
                break (u, v);
            }
        };
        let cat = Arc::new(Catalog::new());
        cat.insert_with_config(
            &name,
            g,
            slow_build_config(8),
            parallel_scc::engine::BatchOptions::default(),
        );

        // Thread 1: first query triggers the lazy off-lock build.
        let builder = {
            let (cat, name) = (cat.clone(), name.clone());
            std::thread::spawn(move || cat.index(&name).expect("registered"))
        };
        // Thread 2 (here): land a delta mid-build.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let mut d = Delta::new();
        d.insert(new_edge.0, new_edge.1);
        cat.apply_delta(&name, &d).expect("valid delta");
        let _ = builder.join().expect("builder thread");

        // The delta must never be lost, raced or not. (The builder's own
        // return value may legitimately be the pre-delta index — if it
        // installed just before the swap, the *delta's* Deferred branch
        // discards it — so the authoritative check goes through the
        // catalog, which always reflects the post-delta graph.)
        assert!(
            cat.graph(&name).unwrap().out_neighbors(new_edge.0).contains(&new_edge.1),
            "attempt {attempt}: inserted edge vanished"
        );
        assert_eq!(cat.reaches(&name, new_edge.0, new_edge.1), Some(true));
        if cat.discarded_builds(&name) == Some(0) {
            continue; // delta landed before/after the build window; retry
        }
        // The race happened: the generation counter detected the swap and
        // the stale index was discarded instead of shadowing the delta.
        assert_eq!(cat.generation(&name), Some(1));
        // The discard is also visible through the entry's telemetry
        // counter, which mirrors `discarded_builds` exactly.
        let discarded = parallel_scc::telemetry::counter(&format!(
            "pscc_catalog_stale_builds_discarded_total{{graph=\"{name}\"}}"
        ));
        assert_eq!(Some(discarded.get()), cat.discarded_builds(&name));
        raced = true;
        break;
    }
    assert!(raced, "no attempt raced the delta against the off-lock build");
}

#[test]
fn repeated_runs_shake_out_races() {
    // Same computation many times under a wide pool: any latent race shows
    // up as a partition difference eventually.
    let g = parallel_scc::graph::generators::lattice::lattice_sqr(25, 25, 3);
    let want = tarjan_scc(&g);
    with_threads(8, || {
        for run in 0..25 {
            let got = parallel_scc(&g, &SccConfig::default());
            assert!(same_partition(&got.labels, &want), "run {run}");
        }
    });
}

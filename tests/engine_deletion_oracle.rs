//! The deletion planner's end-to-end oracle. Three layers of proof:
//!
//! 1. the shared **scenario suite** (`tests/common/scenarios.rs`) drives
//!    scripted workloads over several graph families through
//!    `Catalog::apply_delta`, asserting after every step that all-pairs
//!    answers equal a from-scratch `Index::build` — and that each
//!    scripted step took exactly the repair tier it was constructed to
//!    provoke (support decrement, arc unsplice, SCC split, rebuild, and
//!    the insertion tiers alike);
//! 2. seeded random **mixed insert+delete sequences** with per-tier
//!    coverage assertions, so no deletion tier is silently unreachable;
//! 3. **proptest fuzz** of deletion-heavy delta sequences against a BFS
//!    oracle after every step.
//!
//! A durable variant replays delete-bearing deltas through a store
//! write-ahead log and `Catalog::open`, proving recovery takes the same
//! tiered path (this test is also wired into CI's persistence-smoke
//! job).

use parallel_scc::engine::{
    BatchOptions, Delta, DeltaOutcome, IndexConfig as EngineIndexConfig, RepairBudget,
};
use parallel_scc::prelude::*;
use pscc_runtime::SplitMix64;
use std::collections::BTreeSet;

type EdgePair = (Vec<(V, V)>, Vec<(V, V)>);

mod common;
use common::bfs_reaches;
use common::scenarios::{replay_against_oracle, scenario_suite, OutcomeTally};

fn interval_cfg() -> EngineIndexConfig {
    EngineIndexConfig { bitset_budget_bytes: 0, ..EngineIndexConfig::default() }
}

/// Every scenario of the suite, in both summary tiers, with scripted
/// per-step tier expectations enforced — and the suite as a whole must
/// cover every outcome, deletion tiers included.
#[test]
fn scenario_suite_hits_every_tier_by_construction() {
    let mut total = OutcomeTally::default();
    for cfg in [EngineIndexConfig::default(), interval_cfg()] {
        for scenario in scenario_suite(0xdec0de) {
            let tally = replay_against_oracle(&scenario, cfg.clone(), true, true);
            total.absorb(&tally);
        }
    }
    assert!(total.noop > 0, "NoOp never observed");
    assert!(total.absorbed > 0, "Absorb tier never observed");
    assert!(total.absorbed_deletions > 0, "support-decrement deletions never observed");
    assert!(total.dag_spliced > 0, "DagSplice tier never observed");
    assert!(total.region_recomputed > 0, "RegionRecompute tier never observed");
    assert!(total.arc_unspliced > 0, "ArcUnsplice tier never observed");
    assert!(total.scc_split > 0, "SccSplit tier never observed");
    assert!(total.rebuilt > 0, "full-rebuild fallback never observed");
}

/// The same suite without a pre-built index: the first effective delta
/// defers, the index appears lazily mid-sequence, and answers still
/// match the oracle after every step.
#[test]
fn scenario_suite_matches_oracle_with_lazy_index() {
    let mut total = OutcomeTally::default();
    for scenario in scenario_suite(0x1a2b) {
        let tally = replay_against_oracle(&scenario, EngineIndexConfig::default(), false, true);
        total.absorb(&tally);
    }
    assert!(total.deferred > 0, "lazy-index runs must defer at least one delta");
}

/// Random mixed insert+delete sequences: every step checked against a
/// from-scratch build, and the deletion tiers must all be reached.
#[test]
fn random_mixed_sequences_cover_all_deletion_tiers() {
    let mut outcomes = OutcomeTally::default();
    for seed in 0..16u64 {
        let mut rng = SplitMix64::new(0xde1e7e ^ (seed * 0x9e37));
        let n = 20 + (seed as usize % 4) * 8;
        let g = parallel_scc::graph::generators::random::gnm_digraph(n, n * 3, seed);
        let mut edges: BTreeSet<(V, V)> = g.out_csr().edges().collect();

        let mut cfg = EngineIndexConfig::default();
        if seed % 2 == 1 {
            cfg.bitset_budget_bytes = 0; // interval tier
        }
        if seed % 4 == 3 {
            // A tiny budget forces SplitOverBudget rebuilds on big SCCs.
            cfg.repair = RepairBudget { region_frac: 0.05, min_region: 2, max_planned_arcs: 128 };
        }
        let catalog = Catalog::new();
        catalog.insert_with_config("g", g, cfg, BatchOptions::default());
        let _ = catalog.index("g").unwrap();

        for step in 0..12u64 {
            let idx = catalog.index("g").expect("registered");
            // Group present edges by component pair so deletions can be
            // aimed at parallel supports, lone supports, or intra-SCC
            // edges deliberately.
            let mut by_pair: std::collections::HashMap<(u32, u32), Vec<(V, V)>> =
                std::collections::HashMap::new();
            let mut intra: Vec<(V, V)> = Vec::new();
            for &(u, v) in edges.iter() {
                let (a, b) = (idx.comp(u), idx.comp(v));
                if a == b {
                    if u != v {
                        intra.push((u, v));
                    }
                } else {
                    by_pair.entry((a, b)).or_default().push((u, v));
                }
            }
            let (ins, del): EdgePair = match step % 6 {
                // Support decrement: one of a multi-edge pair.
                0 => match by_pair.values().find(|v| v.len() >= 2) {
                    Some(v) => (vec![], vec![v[0]]),
                    None => continue,
                },
                // Arc unsplice: the only support of a pair.
                1 => match by_pair.values().find(|v| v.len() == 1) {
                    Some(v) => (vec![], vec![v[0]]),
                    None => continue,
                },
                // Split check: an intra-SCC edge.
                2 => match intra.first() {
                    Some(&e) => (vec![], vec![e]),
                    None => continue,
                },
                // Mixed structural: deletion + insertion.
                3 => {
                    let Some(&e) = intra
                        .first()
                        .or_else(|| by_pair.values().find(|v| v.len() == 1).map(|v| &v[0]))
                    else {
                        continue;
                    };
                    let ins = vec![(rng.next_below(n as u64) as V, rng.next_below(n as u64) as V)];
                    (ins, vec![e])
                }
                // Random insertions.
                4 => {
                    let ins: Vec<(V, V)> = (0..3)
                        .map(|_| (rng.next_below(n as u64) as V, rng.next_below(n as u64) as V))
                        .collect();
                    (ins, vec![])
                }
                // Random deletions of present edges.
                _ => {
                    let mut del = Vec::new();
                    for _ in 0..2 {
                        if let Some(&e) =
                            edges.iter().nth(rng.next_below(edges.len().max(1) as u64) as usize)
                        {
                            del.push(e);
                        }
                    }
                    (vec![], del)
                }
            };
            let had_deletions = !del.is_empty();
            let delta = Delta::from_parts(ins.clone(), del.clone());
            let report = catalog.apply_delta("g", &delta).unwrap();
            match report.outcome {
                DeltaOutcome::NoOp => outcomes.noop += 1,
                DeltaOutcome::Deferred => outcomes.deferred += 1,
                DeltaOutcome::Absorbed => {
                    outcomes.absorbed += 1;
                    if had_deletions {
                        outcomes.absorbed_deletions += 1;
                    }
                }
                DeltaOutcome::DagSpliced => outcomes.dag_spliced += 1,
                DeltaOutcome::RegionRecomputed => outcomes.region_recomputed += 1,
                DeltaOutcome::ArcUnspliced => outcomes.arc_unspliced += 1,
                DeltaOutcome::SccSplit => outcomes.scc_split += 1,
                DeltaOutcome::Rebuilt => outcomes.rebuilt += 1,
            }
            let del_effective: Vec<(V, V)> =
                del.iter().filter(|e| !ins.contains(e)).copied().collect();
            for e in &del_effective {
                edges.remove(e);
            }
            edges.extend(ins.iter().copied());

            let edge_list: Vec<(V, V)> = edges.iter().copied().collect();
            let oracle = DiGraph::from_edges(n, &edge_list);
            assert_eq!(
                catalog.graph("g").unwrap().out_csr(),
                oracle.out_csr(),
                "seed {seed} step {step}: stored graph diverged"
            );
            let scratch = ReachIndex::build(&oracle);
            for u in 0..n as V {
                for v in 0..n as V {
                    assert_eq!(
                        catalog.reaches("g", u, v),
                        Some(scratch.reaches(u, v)),
                        "seed {seed} step {step}: ({u}, {v})"
                    );
                }
            }
        }
    }
    assert!(outcomes.absorbed_deletions > 0, "support-decrement deletions never taken");
    assert!(outcomes.arc_unspliced > 0, "ArcUnsplice tier never taken");
    assert!(outcomes.scc_split > 0, "SccSplit tier never taken");
    assert!(outcomes.rebuilt > 0, "fallback rebuild never taken");
}

/// Delete-bearing deltas through the write-ahead log: a durable catalog
/// applies a scenario's scripted deltas (every tier, deletions
/// included), is dropped, and `Catalog::open` must recover the exact
/// graph and answers by replaying the log through the same planner.
#[test]
fn wal_replay_recovers_deletion_deltas_end_to_end() {
    let dir = {
        let mut p = std::env::temp_dir();
        p.push(format!("pscc_deletion_oracle_wal_{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        p
    };
    for scenario in scenario_suite(0x0a11) {
        let g = DiGraph::from_edges(scenario.n, &scenario.edges);
        let mut edges: BTreeSet<(V, V)> = g.out_csr().edges().collect();
        let catalog = Catalog::new();
        catalog.insert("g", g);
        catalog.persist_to("g", &dir).unwrap();
        let _ = catalog.index("g").unwrap();
        for step in &scenario.steps {
            let delta = Delta::from_parts(step.insertions.clone(), step.deletions.clone());
            catalog.apply_delta("g", &delta).unwrap();
            for e in step.deletions.iter().filter(|e| !step.insertions.contains(e)) {
                edges.remove(e);
            }
            edges.extend(step.insertions.iter().copied());
        }
        drop(catalog);

        let back = Catalog::open(&dir).unwrap();
        let edge_list: Vec<(V, V)> = edges.iter().copied().collect();
        let oracle = DiGraph::from_edges(scenario.n, &edge_list);
        assert_eq!(
            back.graph("g").unwrap().out_csr(),
            oracle.out_csr(),
            "{}: recovered graph diverged",
            scenario.name
        );
        let scratch = ReachIndex::build(&oracle);
        for u in 0..scenario.n as V {
            for v in 0..scenario.n as V {
                assert_eq!(
                    back.reaches("g", u, v),
                    Some(scratch.reaches(u, v)),
                    "{}: recovered answer ({u}, {v})",
                    scenario.name
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Proptest fuzz of the deletion planner: deletion-heavy delta
/// sequences over arbitrary graphs, answers checked against BFS on the
/// tracked edge set after every step.
mod fuzz {
    use super::*;
    use proptest::prelude::*;

    type EdgeList = Vec<(V, V)>;

    fn arb_graph() -> impl Strategy<Value = (usize, Vec<(V, V)>)> {
        (4usize..32).prop_flat_map(|n| {
            let edge = (0..n as u32, 0..n as u32);
            proptest::collection::vec(edge, 0..(n * 4)).prop_map(move |edges| (n, edges))
        })
    }

    /// Deletion-heavy scripts: deletions are drawn as *indexes into the
    /// current edge set*, so most of them name present edges and
    /// actually exercise the deletion tiers (uniform random pairs
    /// mostly miss).
    fn arb_deltas() -> impl Strategy<Value = Vec<(EdgeList, Vec<u32>)>> {
        let one = (
            proptest::collection::vec((0u32..64, 0u32..64), 0..3),
            proptest::collection::vec(0u32..4096, 0..6),
        );
        proptest::collection::vec(one, 1..6)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn deletion_heavy_sequences_match_bfs_after_every_step(
            graph_spec in arb_graph(),
            seq in arb_deltas(),
            interval_tier in any::<bool>(),
            tight_budget in any::<bool>(),
        ) {
            let (n, base) = graph_spec;
            let base: Vec<(V, V)> = base.into_iter()
                .map(|(u, v)| (u % n as V, v % n as V)).collect();
            let g = DiGraph::from_edges(n, &base);
            let mut edges: BTreeSet<(V, V)> = g.out_csr().edges().collect();
            let mut cfg = if interval_tier {
                EngineIndexConfig { bitset_budget_bytes: 0, ..EngineIndexConfig::default() }
            } else {
                EngineIndexConfig::default()
            };
            if tight_budget {
                cfg.repair = RepairBudget {
                    region_frac: 0.1, min_region: 2, max_planned_arcs: 4,
                };
            }
            let catalog = Catalog::new();
            catalog.insert_with_config("g", g, cfg, BatchOptions::default());
            let _ = catalog.index("g").unwrap();
            for (ins, del_picks) in seq {
                let ins: Vec<(V, V)> = ins.into_iter()
                    .map(|(u, v)| (u % n as V, v % n as V)).collect();
                let del: Vec<(V, V)> = del_picks
                    .iter()
                    .filter(|_| !edges.is_empty())
                    .map(|&k| *edges.iter().nth(k as usize % edges.len()).unwrap())
                    .collect();
                let delta = Delta::from_parts(ins.clone(), del.clone());
                catalog.apply_delta("g", &delta).unwrap();
                for e in del.iter().filter(|e| !ins.contains(e)) {
                    edges.remove(e);
                }
                edges.extend(ins.iter().copied());
                let edge_list: Vec<(V, V)> = edges.iter().copied().collect();
                let oracle = DiGraph::from_edges(n, &edge_list);
                for u in 0..n as V {
                    for v in 0..n as V {
                        prop_assert_eq!(
                            catalog.reaches("g", u, v),
                            Some(bfs_reaches(&oracle, u, v)),
                            "({}, {})", u, v
                        );
                    }
                }
            }
        }
    }
}

//! End-to-end post-mortem acceptance tests for `pscc-doctor`: a catalog
//! with the flight recorder enabled is "killed" mid-write (its WAL and
//! flight journal rewritten to the exact bytes a crash would strand),
//! and the doctor must report the store consistent, reconstruct the
//! causal trace of the interrupted delta — including the planner's tier
//! decision — and flag *injected* corruption loudly. A proptest sweep
//! then flips arbitrary bytes in arbitrary files and demands the doctor
//! never panics.

use proptest::prelude::*;

use parallel_scc::engine::{Catalog, Delta};
use pscc_telemetry::recorder;

/// The recorder is process-global; tests that install it must not
/// overlap. The guard also uninstalls on drop so a panicking test cannot
/// leave the recorder pointed at a deleted temp dir.
struct RecorderSession {
    _gate: std::sync::MutexGuard<'static, ()>,
}

fn recorder_session(dir: &std::path::Path) -> RecorderSession {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    Catalog::enable_flight_recorder(dir).unwrap();
    RecorderSession { _gate: gate }
}

impl Drop for RecorderSession {
    fn drop(&mut self) {
        recorder::uninstall();
    }
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pscc_doctor_pm_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// The flight-journal segments under `dir`, oldest first.
fn fdr_segments(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "fdr"))
        .collect();
    out.sort();
    out
}

/// Builds a durable catalog with the recorder on: persisted path graph,
/// index built, one splice-able insert, one back edge that forces a
/// planned repair. Returns the data dir with all events flushed.
fn populated_with_recorder(name: &str) -> (std::path::PathBuf, RecorderSession) {
    let dir = tmpdir(name);
    let session = recorder_session(&dir);
    let cat = Catalog::new();
    cat.insert("g", parallel_scc::graph::generators::simple::path_digraph(8));
    cat.persist_to("g", &dir).unwrap();
    let _ = cat.index("g").unwrap();
    let mut skip = Delta::new();
    skip.insert(0, 2); // acyclic shortcut: splices into the condensation
    cat.apply_delta("g", &skip).unwrap();
    let mut back = Delta::new();
    back.insert(7, 0); // back edge: merges the whole path into one SCC
    cat.apply_delta("g", &back).unwrap();
    recorder::flush_active().unwrap();
    drop(cat); // force-dumps whatever the ring still holds
    (dir, session)
}

/// The acceptance criterion: killed mid-write, the on-disk state tells
/// the whole story. The WAL is torn inside its final record and the
/// flight journal inside its next frame — exactly what a crash between
/// two fsyncs strands — and the doctor must (a) call the store
/// consistent, (b) show the interrupted delta's causal trace with the
/// planner's tier decision, and (c) replay to the same graph recovery
/// produces.
#[test]
fn kill_mid_write_reconstructs_the_causal_trace() {
    let (dir, session) = populated_with_recorder("killmidwrite");
    let wal = dir.join("g").join("wal.log");
    let wal_bytes = std::fs::read(&wal).unwrap();

    // Doctor's replay of the *intact* state, for comparison below.
    let full_graph = pscc_doctor::replay_graph(&dir, "g").unwrap().unwrap();
    drop(session);

    // Tear the WAL inside its last record and strand half a frame at the
    // flight journal's tail.
    std::fs::write(&wal, &wal_bytes[..wal_bytes.len() - 5]).unwrap();
    let seg = fdr_segments(&dir).pop().expect("recorder wrote a segment");
    let mut seg_bytes = std::fs::read(&seg).unwrap();
    seg_bytes.extend_from_slice(&[0x40, 0x00, 0x00, 0x00, 0xaa, 0xbb, 0xcc]);
    std::fs::write(&seg, &seg_bytes).unwrap();

    let diag = pscc_doctor::diagnose(&dir, 50).unwrap();
    assert!(diag.healthy(), "torn tails are crash residue, not corruption: {:?}", diag.corruption);
    assert!(diag.report.contains("torn"), "{}", diag.report);
    // The causal trace survives the crash: both deltas appear with the
    // planner's decisions, alongside the store lifecycle.
    assert!(diag.report.contains("apply_delta"), "{}", diag.report);
    assert!(diag.report.contains("chosen=region_recompute"), "{}", diag.report);
    assert!(diag.report.contains("rejected"), "{}", diag.report);
    assert!(diag.report.contains("repair-tier mix"), "{}", diag.report);

    // The doctor's read-only replay agrees with real recovery on the torn
    // state (recovery drops the torn record; so must the doctor).
    let replayed = pscc_doctor::replay_graph(&dir, "g").unwrap().unwrap();
    assert!(replayed.m() < full_graph.m(), "the torn record must not be replayed");
    let verdicts = pscc_doctor::explain_queries(&dir, "g", &[(0, 7), (7, 0), (9, 9)]).unwrap();
    let recovered = Catalog::open(&dir).unwrap();
    assert_eq!(recovered.graph("g").unwrap().out_csr(), replayed.out_csr());
    assert_eq!(
        verdicts[0].contains("= true"),
        recovered.reaches("g", 0, 7).unwrap(),
        "{}",
        verdicts[0]
    );
    assert_eq!(
        verdicts[1].contains("= true"),
        recovered.reaches("g", 7, 0).unwrap(),
        "{}",
        verdicts[1]
    );
    assert!(verdicts[2].contains("invalid"), "{}", verdicts[2]);
    drop(recovered);
    std::fs::remove_dir_all(dir).ok();
}

/// Injected damage — as opposed to torn tails — must be a loud, nonzero
/// finding: a flipped WAL magic and a flipped flight-journal magic each
/// produce a corruption entry naming the damaged artifact.
#[test]
fn injected_corruption_is_detected_loudly() {
    let (dir, session) = populated_with_recorder("injected");
    drop(session);

    let wal = dir.join("g").join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes[0] ^= 0xff;
    std::fs::write(&wal, &bytes).unwrap();
    let seg = fdr_segments(&dir).pop().expect("recorder wrote a segment");
    let mut seg_bytes = std::fs::read(&seg).unwrap();
    seg_bytes[0] ^= 0xff;
    std::fs::write(&seg, &seg_bytes).unwrap();

    let diag = pscc_doctor::diagnose(&dir, 20).unwrap();
    assert!(!diag.healthy());
    assert!(diag.corruption.iter().any(|c| c.contains("wal")), "{:?}", diag.corruption);
    assert!(diag.corruption.iter().any(|c| c.contains("flight journal")), "{:?}", diag.corruption);
    assert!(diag.report.contains("verdict: 2 corruption finding(s)"), "{}", diag.report);
    std::fs::remove_dir_all(dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flip one byte anywhere in any file of the data dir — snapshot,
    /// WAL, or flight segment: every doctor entry point must return
    /// (healthy, findings, or an error), never panic.
    #[test]
    fn doctor_never_panics_on_arbitrary_corruption(
        seed in 0u64..1_000_000,
        file_pick in 0usize..64,
        flip_pos in 0usize..1 << 20,
        flip_xor in 1u8..255,
    ) {
        let (dir, session) = populated_with_recorder(&format!("fuzz{seed}"));
        drop(session);
        let mut files: Vec<_> = Vec::new();
        for entry in walk(&dir) {
            files.push(entry);
        }
        files.sort();
        prop_assert!(!files.is_empty());
        let target = &files[file_pick % files.len()];
        let mut bytes = std::fs::read(target).unwrap();
        if !bytes.is_empty() {
            let pos = flip_pos % bytes.len();
            bytes[pos] ^= flip_xor;
            std::fs::write(target, &bytes).unwrap();
        }

        // None of these may panic; errors and findings are both fine.
        let diag = pscc_doctor::diagnose(&dir, 30);
        prop_assert!(diag.is_ok(), "diagnose must report, not fail: {:?}", diag.err());
        let _ = pscc_doctor::replay_graph(&dir, "g");
        let _ = pscc_doctor::explain_queries(&dir, "g", &[(0, 7), (3, 3)]);
        std::fs::remove_dir_all(dir).ok();
    }
}

/// All regular files under `dir`, one level of graph subdirs included.
fn walk(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            out.extend(walk(&path));
        } else {
            out.push(path);
        }
    }
    out
}

//! Property-based tests: random digraphs → the parallel SCC partition must
//! equal Tarjan's, and structural invariants must hold for arbitrary
//! inputs.

use proptest::prelude::*;

use parallel_scc::prelude::*;
use parallel_scc::scc::verify::{component_stats, normalize_labels, same_partition};

/// Arbitrary edge list over n vertices.
fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (2usize..80).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..(n * 4))
            .prop_map(move |edges| DiGraph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scc_matches_tarjan(g in arb_graph()) {
        let got = parallel_scc(&g, &SccConfig::default());
        let want = tarjan_scc(&g);
        prop_assert!(same_partition(&got.labels, &want));
    }

    #[test]
    fn scc_plain_matches_tarjan(g in arb_graph()) {
        let got = parallel_scc(&g, &SccConfig::plain());
        let want = tarjan_scc(&g);
        prop_assert!(same_partition(&got.labels, &want));
    }

    #[test]
    fn gbbs_baseline_matches_tarjan(g in arb_graph()) {
        let (got, _) = gbbs_scc(&g, &SccConfig::default());
        let want = tarjan_scc(&g);
        prop_assert!(same_partition(&got.labels, &want));
    }

    #[test]
    fn multistep_matches_tarjan(g in arb_graph()) {
        let got = multistep_scc(&g, &ReachParams::default());
        let want = tarjan_scc(&g);
        prop_assert!(same_partition(&got.labels, &want));
    }

    #[test]
    fn fwbw_matches_tarjan(g in arb_graph()) {
        let got = fwbw_scc(&g, &ReachParams::default());
        let want = tarjan_scc(&g);
        prop_assert!(same_partition(&got.labels, &want));
    }

    #[test]
    fn result_stats_are_consistent(g in arb_graph()) {
        let got = parallel_scc(&g, &SccConfig::default());
        let (k, largest) = component_stats(&got.labels);
        prop_assert_eq!(got.num_sccs, k);
        prop_assert_eq!(got.largest_scc, largest);
        prop_assert_eq!(got.labels.len(), g.n());
        // Component count bounds.
        prop_assert!(k >= 1 && k <= g.n());
        prop_assert!(largest >= 1 && largest <= g.n());
    }

    #[test]
    fn every_cycle_edge_stays_within_a_component(g in arb_graph()) {
        // For each edge (u,v): if v can reach u (i.e. the edge closes a
        // cycle), then u and v must share a component.
        let got = parallel_scc(&g, &SccConfig::default());
        let norm = normalize_labels(&got.labels);
        for (u, v) in g.out_csr().edges() {
            // Sequential reachability from v to u.
            let mut seen = vec![false; g.n()];
            let mut stack = vec![v];
            seen[v as usize] = true;
            let mut reaches = false;
            while let Some(x) = stack.pop() {
                if x == u { reaches = true; break; }
                for &w in g.out_neighbors(x) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        stack.push(w);
                    }
                }
            }
            prop_assert_eq!(reaches, norm[u as usize] == norm[v as usize],
                "edge ({}, {})", u, v);
        }
    }

    #[test]
    fn seed_does_not_change_partition(g in arb_graph(), s1 in 0u64..100, s2 in 0u64..100) {
        let a = parallel_scc(&g, &SccConfig { seed: s1, ..SccConfig::default() });
        let b = parallel_scc(&g, &SccConfig { seed: s2, ..SccConfig::default() });
        prop_assert!(same_partition(&a.labels, &b.labels));
    }

    #[test]
    fn tau_does_not_change_partition(g in arb_graph(), tau in 1usize..64) {
        let a = parallel_scc(&g, &SccConfig::default());
        let b = parallel_scc(&g, &SccConfig::default().with_tau(tau));
        prop_assert!(same_partition(&a.labels, &b.labels));
    }
}

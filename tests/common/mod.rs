//! Shared helpers for the integration-test targets that declare
//! `mod common;` (a directory module, so cargo does not treat it as a
//! test target of its own).

// Each test target compiles `common` independently and uses a different
// slice of it — unused items in one target are not dead code.
#[allow(dead_code)]
pub mod scenarios;

use parallel_scc::prelude::*;

/// Brute-force reachability oracle: iterative DFS over the out-CSR.
pub fn bfs_reaches(g: &DiGraph, u: V, v: V) -> bool {
    let mut seen = vec![false; g.n()];
    let mut stack = vec![u];
    seen[u as usize] = true;
    while let Some(x) = stack.pop() {
        if x == v {
            return true;
        }
        for &w in g.out_neighbors(x) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                stack.push(w);
            }
        }
    }
    false
}

//! Deterministic, seeded workload scenarios shared by the engine's
//! oracle tests: graph families beyond RMAT (cycle chains, layered DAGs,
//! grids, star hubs, random digraphs) × scripted insert/delete/mixed
//! delta sequences, constructed so that **every repair tier of the
//! planner is exercised by construction rather than by luck** — each
//! scripted step can carry the exact [`DeltaOutcome`] it was built to
//! provoke, and the replay driver checks it.
//!
//! The driver ([`replay_against_oracle`]) pushes a scenario through a
//! live [`Catalog`] while maintaining a plain edge-set oracle, and after
//! **every** step asserts that the stored graph and all-pairs
//! reachability answers are identical to a from-scratch
//! [`ReachIndex::build`] over the oracle edges.

use parallel_scc::engine::{BatchOptions, Delta, DeltaOutcome, IndexConfig};
use parallel_scc::prelude::*;
use pscc_runtime::SplitMix64;
use std::collections::BTreeSet;

/// One scripted delta of a scenario.
pub struct Step {
    pub insertions: Vec<(V, V)>,
    pub deletions: Vec<(V, V)>,
    /// The outcome this step was constructed to provoke (checked by the
    /// driver whenever an index was live before the step); `None` for
    /// free-form steps.
    pub expect: Option<DeltaOutcome>,
}

impl Step {
    fn new(ins: &[(V, V)], del: &[(V, V)], expect: DeltaOutcome) -> Step {
        Step { insertions: ins.to_vec(), deletions: del.to_vec(), expect: Some(expect) }
    }

    fn free(ins: Vec<(V, V)>, del: Vec<(V, V)>) -> Step {
        Step { insertions: ins, deletions: del, expect: None }
    }
}

/// A named starting graph plus its scripted delta sequence.
pub struct Scenario {
    pub name: String,
    pub n: usize,
    pub edges: Vec<(V, V)>,
    pub steps: Vec<Step>,
}

/// Per-outcome tallies of one or more replays.
#[derive(Clone, Copy, Default, Debug)]
pub struct OutcomeTally {
    pub noop: u64,
    pub deferred: u64,
    pub absorbed: u64,
    pub dag_spliced: u64,
    pub region_recomputed: u64,
    pub arc_unspliced: u64,
    pub scc_split: u64,
    pub rebuilt: u64,
    /// `Absorbed` outcomes of delete-bearing deltas specifically: the
    /// support-decrement / latent-dead / no-split metadata tier.
    pub absorbed_deletions: u64,
}

impl OutcomeTally {
    fn record(&mut self, outcome: DeltaOutcome, had_deletions: bool) {
        match outcome {
            DeltaOutcome::NoOp => self.noop += 1,
            DeltaOutcome::Deferred => self.deferred += 1,
            DeltaOutcome::Absorbed => {
                self.absorbed += 1;
                if had_deletions {
                    self.absorbed_deletions += 1;
                }
            }
            DeltaOutcome::DagSpliced => self.dag_spliced += 1,
            DeltaOutcome::RegionRecomputed => self.region_recomputed += 1,
            DeltaOutcome::ArcUnspliced => self.arc_unspliced += 1,
            DeltaOutcome::SccSplit => self.scc_split += 1,
            DeltaOutcome::Rebuilt => self.rebuilt += 1,
        }
    }

    /// Adds another tally into this one.
    pub fn absorb(&mut self, other: &OutcomeTally) {
        self.noop += other.noop;
        self.deferred += other.deferred;
        self.absorbed += other.absorbed;
        self.dag_spliced += other.dag_spliced;
        self.region_recomputed += other.region_recomputed;
        self.arc_unspliced += other.arc_unspliced;
        self.scc_split += other.scc_split;
        self.rebuilt += other.rebuilt;
        self.absorbed_deletions += other.absorbed_deletions;
    }
}

/// Applies the documented delta semantics (`(E ∖ del) ∪ ins`,
/// ends-up-present) to a plain edge set.
fn apply_to_edge_set(edges: &mut BTreeSet<(V, V)>, ins: &[(V, V)], del: &[(V, V)]) {
    for e in del {
        if !ins.contains(e) {
            edges.remove(e);
        }
    }
    edges.extend(ins.iter().copied());
}

/// Replays `scenario` through a fresh catalog, asserting after every
/// step that the stored graph and all-pairs answers match a from-scratch
/// index over the tracked edge set — and, when `check_expectations`,
/// that each step took exactly the repair tier it was scripted to
/// provoke. `build_first` controls whether an index exists before the
/// first delta (otherwise it appears lazily at the first check).
pub fn replay_against_oracle(
    scenario: &Scenario,
    cfg: IndexConfig,
    build_first: bool,
    check_expectations: bool,
) -> OutcomeTally {
    let g = DiGraph::from_edges(scenario.n, &scenario.edges);
    let mut edges: BTreeSet<(V, V)> = g.out_csr().edges().collect();
    let catalog = Catalog::new();
    catalog.insert_with_config("g", g, cfg, BatchOptions::default());
    if build_first {
        let _ = catalog.index("g").expect("registered");
    }
    let mut tally = OutcomeTally::default();
    for (i, step) in scenario.steps.iter().enumerate() {
        let ctx = format!("scenario {} step {i}", scenario.name);
        let was_indexed = catalog.is_indexed("g");
        let delta = Delta::from_parts(step.insertions.clone(), step.deletions.clone());
        let report = catalog.apply_delta("g", &delta).unwrap_or_else(|e| panic!("{ctx}: {e}"));
        tally.record(report.outcome, !step.deletions.is_empty());
        if check_expectations {
            if let Some(expect) = step.expect {
                // Without a live index every non-noop delta defers.
                let expect = if was_indexed || expect == DeltaOutcome::NoOp {
                    expect
                } else {
                    DeltaOutcome::Deferred
                };
                assert_eq!(report.outcome, expect, "{ctx}: scripted tier not taken");
            }
        }
        apply_to_edge_set(&mut edges, &step.insertions, &step.deletions);

        // Oracle: stored graph and all answers equal a from-scratch build.
        let edge_list: Vec<(V, V)> = edges.iter().copied().collect();
        let oracle_graph = DiGraph::from_edges(scenario.n, &edge_list);
        let stored = catalog.graph("g").expect("registered");
        assert_eq!(stored.out_csr(), oracle_graph.out_csr(), "{ctx}: stored graph diverged");
        let scratch = ReachIndex::build(&oracle_graph);
        for u in 0..scenario.n as V {
            for v in 0..scenario.n as V {
                assert_eq!(
                    catalog.reaches("g", u, v),
                    Some(scratch.reaches(u, v)),
                    "{ctx}: answer ({u}, {v}) diverged from the from-scratch oracle"
                );
            }
        }
    }
    tally
}

/// The full scenario suite: every structured family plus seeded random
/// mixed workloads.
pub fn scenario_suite(seed: u64) -> Vec<Scenario> {
    vec![
        cycle_chain(3, 5),
        layered_dag(4, 3),
        grid(4, 4),
        star_hubs(3, 2),
        random_mixed(24, 48, 10, seed),
        random_mixed(32, 96, 10, seed ^ 0x5eed),
        random_mixed(16, 20, 12, seed ^ 0xfeed),
    ]
}

/// Hub-heavy scenarios for the 2-hop label tier: graphs whose
/// reachability concentrates through a few high-degree vertices, so the
/// degree-descending labeling picks real hubs and the label arrays carry
/// genuine coverage (rather than degenerating to self-labels). Replayed
/// under a label-forcing config by `tests/engine_label_oracle.rs`.
pub fn label_scenario_suite(seed: u64) -> Vec<Scenario> {
    vec![
        hub_fanout(4, 3, 4),
        hub_fanout(3, 2, 6),
        star_hubs(4, 3),
        layered_dag(6, 4),
        random_mixed(40, 110, 10, seed ^ 0x1ab),
    ]
}

/// A three-rank fanout DAG: `sources` × `hubs` × `sinks`, every source
/// feeding every hub and every hub feeding every sink. The hubs carry
/// degree `sources + sinks` — far above everything else — so the pruned
/// labeling processes them first and one or two hub entries per vertex
/// cover the whole reachability relation. Steps exercise every repair
/// tier against that labeling: absorb (hub-witnessed shortcut), arc
/// unsplice + re-splice of a spoke, a sink→source back edge (region
/// merge) and the split that prices through the merged component, a
/// mixed structural rebuild, and a no-op.
pub fn hub_fanout(sources: usize, hubs: usize, sinks: usize) -> Scenario {
    let n = sources + hubs + sinks;
    let src = |i: usize| i as V;
    let hub = |j: usize| (sources + j) as V;
    let sink = |k: usize| (sources + hubs + k) as V;
    let mut edges: Vec<(V, V)> = Vec::new();
    for i in 0..sources {
        for j in 0..hubs {
            edges.push((src(i), hub(j)));
        }
    }
    for j in 0..hubs {
        for k in 0..sinks {
            edges.push((hub(j), sink(k)));
        }
    }
    let steps = vec![
        // Source-to-sink shortcut: already witnessed by every hub.
        Step::new(&[(src(0), sink(0))], &[], DeltaOutcome::Absorbed),
        // A single spoke is one support of its condensation arc.
        Step::new(&[], &[(src(0), hub(0))], DeltaOutcome::ArcUnspliced),
        // Neither endpoint reaches the other now: a pure re-splice.
        Step::new(&[(src(0), hub(0))], &[], DeltaOutcome::DagSpliced),
        // Sink-to-source back edge closes a cycle through the hubs.
        Step::new(&[(sink(0), src(0))], &[], DeltaOutcome::RegionRecomputed),
        // An intra-SCC spoke of the merged component: the split check.
        Step::new(&[], &[(src(0), hub(1))], DeltaOutcome::SccSplit),
        // A structural deletion (the sole spoke from src 1 to hub 1)
        // mixed with an insertion: priced out.
        Step::new(&[(sink(1), sink(2))], &[(src(1), hub(1))], DeltaOutcome::Rebuilt),
        // Redundant operations only.
        Step::new(&[(src(2), hub(0))], &[(sink(2), sink(0))], DeltaOutcome::NoOp),
    ];
    Scenario { name: format!("hub_fanout_{sources}x{hubs}x{sinks}"), n, edges, steps }
}

/// `cycles` directed cycles of length `len` linked in a chain, each link
/// carried by **two parallel edges** (two direct supports of one
/// condensation arc). Exercises: support decrement, arc unsplice,
/// re-splice, latent absorb + latent-dead delete, SCC split, region
/// re-merge, mixed rebuild, noop.
pub fn cycle_chain(cycles: usize, len: usize) -> Scenario {
    let n = cycles * len;
    let at = |c: usize, j: usize| (c * len + j) as V;
    let mut edges: Vec<(V, V)> = Vec::new();
    for c in 0..cycles {
        for j in 0..len {
            edges.push((at(c, j), at(c, (j + 1) % len)));
        }
        if c + 1 < cycles {
            edges.push((at(c, 0), at(c + 1, 0)));
            edges.push((at(c, 1), at(c + 1, 1)));
        }
    }
    let steps = vec![
        // One of two parallel supports: metadata-only decrement.
        Step::new(&[], &[(at(0, 0), at(1, 0))], DeltaOutcome::Absorbed),
        // The last support: the condensation arc dies.
        Step::new(&[], &[(at(0, 1), at(1, 1))], DeltaOutcome::ArcUnspliced),
        // Relink the mutually unreachable cycles: a pure arc splice.
        Step::new(&[(at(0, 0), at(1, 0))], &[], DeltaOutcome::DagSpliced),
        // A shortcut over two hops: absorbable, becomes a latent pair.
        Step::new(&[(at(0, 0), at(2, 0))], &[], DeltaOutcome::Absorbed),
        // Deleting the latent shortcut: the DAG still witnesses it.
        Step::new(&[], &[(at(0, 0), at(2, 0))], DeltaOutcome::Absorbed),
        // A cycle edge: the middle cycle shatters into singletons.
        Step::new(&[], &[(at(1, 0), at(1, 1))], DeltaOutcome::SccSplit),
        // Putting it back re-merges the region.
        Step::new(&[(at(1, 0), at(1, 1))], &[], DeltaOutcome::RegionRecomputed),
        // Structural deletion + insertion in one delta: priced out.
        Step::new(&[(at(0, 2), at(2, 2))], &[(at(0, 0), at(1, 0))], DeltaOutcome::Rebuilt),
        // Redundant operations only.
        Step::new(&[(at(0, 1), at(0, 2))], &[(at(0, 0), at(2, 4))], DeltaOutcome::NoOp),
    ];
    Scenario { name: format!("cycle_chain_{cycles}x{len}"), n, edges, steps }
}

/// A layered DAG (`layers` × `width`, fanout 2, all singleton
/// components). Exercises: absorb-to-latent, an unsplice whose only
/// surviving witness is the drained latent arc, a cross-layer back edge
/// (region merge), and the split that undoes it.
pub fn layered_dag(layers: usize, width: usize) -> Scenario {
    let n = layers * width;
    let at = |l: usize, w: usize| (l * width + w) as V;
    let mut edges: Vec<(V, V)> = Vec::new();
    for l in 0..layers - 1 {
        for w in 0..width {
            for k in 0..2 {
                edges.push((at(l, w), at(l + 1, (w + k) % width)));
            }
        }
    }
    let steps = vec![
        // Skip edge over one layer: already reachable, goes latent.
        Step::new(&[(at(0, 0), at(2, 0))], &[], DeltaOutcome::Absorbed),
        // The only graph path from (0,0) to (2,0) runs through this arc:
        // after the unsplice the drained latent arc is the sole witness.
        Step::new(&[], &[(at(1, 0), at(2, 0))], DeltaOutcome::ArcUnspliced),
        // Bottom-to-top back edge: merges the components on the cycle.
        Step::new(&[(at(layers - 1, 0), at(0, 0))], &[], DeltaOutcome::RegionRecomputed),
        // Undo it: an intra-SCC deletion, the merged component splits.
        Step::new(&[], &[(at(layers - 1, 0), at(0, 0))], DeltaOutcome::SccSplit),
        // Redundant insertion of a base edge.
        Step::new(&[(at(0, 0), at(1, 0))], &[], DeltaOutcome::NoOp),
    ];
    Scenario { name: format!("layered_dag_{layers}x{width}"), n, edges, steps }
}

/// A `w × h` directed grid (arcs increase x or y — a DAG). Exercises:
/// absorbed diagonal, unsplice of a uniquely supporting arc, a
/// back-diagonal merge, the split check (both splitting and
/// holding-together), and a mixed rebuild.
pub fn grid(w: usize, h: usize) -> Scenario {
    let n = w * h;
    let at = |x: usize, y: usize| (y * w + x) as V;
    let mut edges: Vec<(V, V)> = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((at(x, y), at(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((at(x, y), at(x, y + 1)));
            }
        }
    }
    let steps = vec![
        // A diagonal shortcut: reachable via two corners, goes latent.
        Step::new(&[(at(0, 0), at(1, 1))], &[], DeltaOutcome::Absorbed),
        // (1,0) was reachable from (0,0) only through this arc.
        Step::new(&[], &[(at(0, 0), at(1, 0))], DeltaOutcome::ArcUnspliced),
        // Back-diagonal closes a cycle over {origin, (0,1), (1,1)}.
        Step::new(&[(at(1, 1), at(0, 0))], &[], DeltaOutcome::RegionRecomputed),
        // (0,1) falls out of the merged component; the diagonal pair
        // (origin ↔ (1,1)) stays strongly connected.
        Step::new(&[], &[(at(0, 1), at(1, 1))], DeltaOutcome::SccSplit),
        // Structural deletion + insertion: priced out to a rebuild.
        Step::new(&[(at(2, 2), at(0, 0))], &[(at(0, 0), at(1, 1))], DeltaOutcome::Rebuilt),
    ];
    Scenario { name: format!("grid_{w}x{h}"), n, edges, steps }
}

/// `hubs` two-vertex strongly connected hubs, each fanning out to
/// `leaves` leaves over **two parallel spokes** (one per hub vertex),
/// hubs chained by single links. Exercises: spoke decrement + unsplice,
/// hub split and re-merge, chain-link unsplice and re-splice.
pub fn star_hubs(hubs: usize, leaves: usize) -> Scenario {
    let n = hubs * 2 + hubs * leaves;
    let hub = |i: usize, side: usize| (i * 2 + side) as V;
    let leaf = |i: usize, j: usize| (hubs * 2 + i * leaves + j) as V;
    let mut edges: Vec<(V, V)> = Vec::new();
    for i in 0..hubs {
        edges.push((hub(i, 0), hub(i, 1)));
        edges.push((hub(i, 1), hub(i, 0)));
        for j in 0..leaves {
            edges.push((hub(i, 0), leaf(i, j)));
            edges.push((hub(i, 1), leaf(i, j)));
        }
        if i + 1 < hubs {
            edges.push((hub(i, 0), hub(i + 1, 0)));
        }
    }
    let steps = vec![
        // One of two parallel spokes to leaf 0.
        Step::new(&[], &[(hub(0, 0), leaf(0, 0))], DeltaOutcome::Absorbed),
        // The other one: the spoke arc dies.
        Step::new(&[], &[(hub(0, 1), leaf(0, 0))], DeltaOutcome::ArcUnspliced),
        // Half the hub cycle: the two-vertex hub splits.
        Step::new(&[], &[(hub(0, 0), hub(0, 1))], DeltaOutcome::SccSplit),
        // Put it back: the two singletons re-merge.
        Step::new(&[(hub(0, 0), hub(0, 1))], &[], DeltaOutcome::RegionRecomputed),
        // The only link to the next hub.
        Step::new(&[], &[(hub(0, 0), hub(1, 0))], DeltaOutcome::ArcUnspliced),
        // Relink: a pure splice (no cycle possible).
        Step::new(&[(hub(0, 0), hub(1, 0))], &[], DeltaOutcome::DagSpliced),
        // Redundant both ways.
        Step::new(&[(hub(1, 0), hub(1, 1))], &[(leaf(0, 0), hub(0, 0))], DeltaOutcome::NoOp),
    ];
    Scenario { name: format!("star_hubs_{hubs}x{leaves}"), n, edges, steps }
}

/// A seeded `G(n, m)` digraph with `steps` scripted pseudo-random deltas
/// (pure deletions, pure insertions, and mixed batches), generated
/// against a simulated edge set so deletions always name present edges.
/// No per-step expectations — this family provides breadth, the
/// structured families provide tier coverage by construction.
pub fn random_mixed(n: usize, m: usize, steps: usize, seed: u64) -> Scenario {
    let g = parallel_scc::graph::generators::random::gnm_digraph(n, m, seed);
    let edges: Vec<(V, V)> = g.out_csr().edges().collect();
    let mut sim: BTreeSet<(V, V)> = edges.iter().copied().collect();
    let mut rng = SplitMix64::new(seed ^ 0x5ce9a410);
    let pick_present = |sim: &BTreeSet<(V, V)>, rng: &mut SplitMix64| -> Option<(V, V)> {
        if sim.is_empty() {
            return None;
        }
        sim.iter().nth(rng.next_below(sim.len() as u64) as usize).copied()
    };
    let mut script = Vec::with_capacity(steps);
    for s in 0..steps {
        let mut ins: Vec<(V, V)> = Vec::new();
        let mut del: Vec<(V, V)> = Vec::new();
        let mode = s % 3;
        if mode != 1 {
            // Deletions of present edges (1–3 of them).
            for _ in 0..1 + rng.next_below(3) {
                if let Some(e) = pick_present(&sim, &mut rng) {
                    del.push(e);
                }
            }
        }
        if mode != 0 {
            for _ in 0..1 + rng.next_below(3) {
                ins.push((rng.next_below(n as u64) as V, rng.next_below(n as u64) as V));
            }
        }
        apply_to_edge_set(&mut sim, &ins, &del);
        script.push(Step::free(ins, del));
    }
    Scenario { name: format!("random_mixed_n{n}_m{m}_s{seed:x}"), n, edges, steps: script }
}

//! A reachability "server" serving one big batch: generate an RMAT graph
//! (or load an edge list), build the engine index, answer 10 000 random
//! queries, and report throughput plus the index-build breakdown.
//!
//! Run: `cargo run --release --example reachability_server [path.txt]`
//!
//! With a path argument the graph is loaded as a whitespace-separated
//! `u v` edge list; otherwise a 2^17-vertex RMAT graph is generated.

use parallel_scc::prelude::*;
use std::time::Instant;

fn main() {
    // ---- Load or generate ----
    let t = Instant::now();
    let g = match std::env::args().nth(1) {
        Some(path) => {
            let g = parallel_scc::graph::io::read_edge_list(&path).expect("readable edge list");
            println!("loaded {path}: n={} m={}", g.n(), g.m());
            g
        }
        None => {
            let g = parallel_scc::graph::generators::rmat::rmat_digraph(17, 400_000, 0xa11ce);
            println!("generated RMAT: n={} m={}", g.n(), g.m());
            g
        }
    };
    println!("graph ready in {:.1}ms\n", t.elapsed().as_secs_f64() * 1e3);

    // ---- Build the index ----
    let t = Instant::now();
    let index = ReachIndex::build(&g);
    let build = t.elapsed().as_secs_f64();
    let s = index.stats();
    println!("index built in {:.1}ms  (tier {:?})", build * 1e3, index.tier());
    println!("  scc        {:>8.1}ms", s.scc_seconds * 1e3);
    println!("  condense   {:>8.1}ms", s.condense_seconds * 1e3);
    println!("  levels     {:>8.1}ms", s.levels_seconds * 1e3);
    println!("  summary    {:>8.1}ms", s.summary_seconds * 1e3);
    println!(
        "  components {:>8}  dag arcs {:>8}  summary {:.1} MiB  exceptions {}\n",
        s.num_components,
        s.dag_arcs,
        s.summary_bytes as f64 / (1 << 20) as f64,
        s.exception_components,
    );

    // ---- Serve a 10k batch ----
    let mut rng = pscc_runtime::SplitMix64::new(0xba7c);
    let queries: Vec<(V, V)> = (0..10_000)
        .map(|_| (rng.next_below(g.n() as u64) as V, rng.next_below(g.n() as u64) as V))
        .collect();

    let batch = QueryBatch::new(&index);
    let t = Instant::now();
    let answers = batch.answer(&queries);
    let secs = t.elapsed().as_secs_f64();
    let reachable = answers.iter().filter(|&&b| b).count();
    println!(
        "batch: {} queries in {:.2}ms  ->  {:.0} queries/sec  ({} reachable)",
        queries.len(),
        secs * 1e3,
        queries.len() as f64 / secs,
        reachable,
    );

    // ---- Sanity: spot-check 200 queries against a BFS oracle ----
    let mut checked = 0;
    for &(u, v) in queries.iter().take(200) {
        assert_eq!(answers[checked], bfs_reaches(&g, u, v), "query ({u}, {v})");
        checked += 1;
    }
    println!("spot-checked {checked} answers against BFS: all agree");
}

fn bfs_reaches(g: &DiGraph, u: V, v: V) -> bool {
    let mut seen = vec![false; g.n()];
    let mut stack = vec![u];
    seen[u as usize] = true;
    while let Some(x) = stack.pop() {
        if x == v {
            return true;
        }
        for &w in g.out_neighbors(x) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                stack.push(w);
            }
        }
    }
    false
}

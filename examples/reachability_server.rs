//! A reachability "server" with live updates and optional durability:
//! generate an RMAT graph (or load an edge list), register it in a
//! [`Catalog`], answer a 10 000-query batch, then apply batched edge
//! updates (deltas) and serve the batch again — reporting which repair
//! tier each delta took (*absorbed* / *dag-spliced* /
//! *region-recomputed* / *full-rebuild*) and the per-tier tallies.
//!
//! Run: `cargo run --release --example reachability_server [--data-dir DIR] [--flight-dir DIR] [--metrics] [graph.txt [updates.txt]]`
//!
//! With `--metrics`, the full telemetry registry (counters, gauges, and
//! latency-histogram quantiles) is dumped in Prometheus-style text
//! exposition after each phase — index build, first batch, updates, and
//! the final batch — so the run doubles as a live view of the engine's
//! instrumentation. Set `PSCC_LOG=warn` (or `info`/`debug`) to also see
//! leveled diagnostics on stderr.
//!
//! With `--flight-dir DIR`, the flight recorder journals every delta,
//! rebuild, and latency snapshot to `flight-*.fdr` segments under DIR —
//! after the run (or after a crash), `pscc-doctor DIR` reconstructs the
//! timeline. The run also ends with an **EXPLAIN demo**: the batch is
//! re-answered with provenance (which tier answered each query), and the
//! last delta's repair-plan decision — chosen tier plus every rejected
//! cheaper tier and why — is printed.
//!
//! With a first positional argument the graph is loaded as a
//! whitespace-separated `u v` edge list. A second positional argument is
//! an update-command file applied as one delta, one command per line:
//!
//! ```text
//! # add an edge          # delete an edge
//! + 17 42                - 42 17
//! ```
//!
//! Without an update file, five synthetic deltas demonstrate the repair
//! tiers: one made of already-reachable pairs (absorbed, same index
//! instance), one joining two mutually unreachable components (a
//! condensation arc splice), one closing a back edge (component merge:
//! region recompute, or a cost-bounded rebuild when the merge region is
//! too large), one **deleting** the edge the splice added (its arc's
//! only support dies: a DAG-arc unsplice, no rebuild), and one deleting
//! an intra-SCC edge of a small component (the SCC split check).
//!
//! ## Persistence mode (`--data-dir DIR`)
//!
//! On a **fresh** directory the catalog persists the graph
//! ([`Catalog::persist_to`]): every delta is then write-ahead logged and
//! fsynced before it returns, and the final batch answers are saved next
//! to the store. On a directory that **already holds** a store, the run
//! becomes a restart: the catalog is recovered ([`Catalog::open`] —
//! newest valid snapshot + WAL replay, torn tails truncated), the same
//! batch is served again, and the answers are verified byte-for-byte
//! against the previous run's — kill the process between the two
//! invocations and nothing is lost.

use parallel_scc::engine::{Delta, DeltaReport, QueryTier, SummaryTier};
use parallel_scc::prelude::*;
use std::path::Path;
use std::time::Instant;

const NAME: &str = "serve";

fn main() {
    // ---- Arguments: [--data-dir DIR] [graph.txt [updates.txt]] ----
    let mut args = parallel_scc::server::args::Args::from_env();
    let parsed = (|| {
        let data_dir = args.path("--data-dir")?;
        let flight_dir = args.path("--flight-dir")?;
        Ok::<_, parallel_scc::server::args::ArgsError>((data_dir, flight_dir))
    })();
    let (data_dir, flight_dir) = match parsed {
        Ok(pair) => pair,
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(2);
        }
    };
    let metrics = args.flag("--metrics");
    let positionals = args.finish();
    let graph_path = positionals.first().cloned();
    let updates_path = positionals.get(1).cloned();

    // ---- Flight recorder: journal deltas/rebuilds for pscc-doctor ----
    if let Some(dir) = &flight_dir {
        std::fs::create_dir_all(dir).expect("creatable flight dir");
        Catalog::enable_flight_recorder(dir).expect("writable flight dir");
        println!(
            "flight recorder on: journaling to {} (read it back with pscc-doctor)\n",
            dir.display()
        );
    }

    // A directory that already holds a store means this run is a restart.
    if let Some(dir) = &data_dir {
        if dir.join(NAME).join("wal.log").exists() {
            return recover_and_verify(dir, updates_path.as_deref(), metrics);
        }
    }

    // ---- Load or generate ----
    let t = Instant::now();
    let g = match &graph_path {
        Some(path) => {
            let g = parallel_scc::graph::io::read_edge_list(path).expect("readable edge list");
            println!("loaded {path}: n={} m={}", g.n(), g.m());
            g
        }
        None => {
            let g = parallel_scc::graph::generators::rmat::rmat_digraph(17, 400_000, 0xa11ce);
            println!("generated RMAT: n={} m={}", g.n(), g.m());
            g
        }
    };
    println!("graph ready in {:.1}ms\n", t.elapsed().as_secs_f64() * 1e3);
    let n = g.n();

    let catalog = Catalog::new();
    catalog.insert(NAME, g);

    // ---- Durability: snapshot now, write-ahead log every delta ----
    if let Some(dir) = &data_dir {
        let t = Instant::now();
        catalog.persist_to(NAME, dir).expect("writable data dir");
        let (wal, snap) = catalog.store_bytes(NAME).expect("durable");
        println!(
            "persisted to {} in {:.1}ms  (snapshot {:.1} MiB, wal {} B)\n",
            dir.display(),
            t.elapsed().as_secs_f64() * 1e3,
            snap as f64 / (1 << 20) as f64,
            wal,
        );
    }

    // ---- Build the index ----
    let t = Instant::now();
    let index = catalog.index(NAME).expect("registered above");
    let build = t.elapsed().as_secs_f64();
    print_index_report(&index, build);

    dump_metrics(metrics, "index build");

    // ---- Serve a 10k batch ----
    let queries = query_batch(n);
    let answers = serve_batch(&catalog, &queries);
    spot_check(&catalog, &queries, &answers);
    dump_metrics(metrics, "first batch");

    // ---- Apply updates ----
    match &updates_path {
        Some(path) => {
            let delta = read_update_commands(path).expect("readable update file");
            println!(
                "\napplying {path}: {} insertions, {} deletions",
                delta.insertions().len(),
                delta.deletions().len()
            );
            let report = catalog.apply_delta(NAME, &delta).expect("valid delta");
            print_delta_report(&report);
        }
        None => {
            // Delta 1: edges duplicating answers the batch already proved
            // reachable — provably absorbable, the index must survive.
            let reachable_pairs: Vec<(V, V)> = queries
                .iter()
                .zip(&answers)
                .filter(|&(&(u, v), &a)| a && u != v)
                .map(|(&q, _)| q)
                .take(64)
                .collect();
            let absorb = Delta::from_parts(reachable_pairs, Vec::new());
            println!("\ndelta 1: {} already-reachable edge insertions", absorb.len());
            let report = catalog.apply_delta(NAME, &absorb).expect("valid delta");
            print_delta_report(&report);
            let kept = catalog.index(NAME).expect("still registered");
            assert!(
                std::sync::Arc::ptr_eq(&index, &kept),
                "absorbable delta must keep the index instance"
            );
            println!("  index instance kept (absorbed_deltas = {})", kept.stats().absorbed_deltas);

            // Delta 2: an edge between two mutually unreachable vertices
            // adds a condensation arc without merging components — the
            // DAG-splice tier patches the index in place.
            let splice_edge = queries
                .iter()
                .zip(&answers)
                .find(|&(&(u, v), &a)| !a && u != v && !kept.reaches(v, u))
                .map(|(&q, _)| q);
            if let Some((u, v)) = splice_edge {
                let mut splice = Delta::new();
                splice.insert(u, v);
                println!("\ndelta 2: cross-component edge ({u}, {v}) — no cycle possible");
                let report = catalog.apply_delta(NAME, &splice).expect("valid delta");
                print_delta_report(&report);
            }

            // Delta 3: a back edge along the first one-way pair merges
            // components — region recompute (or a cost-bounded rebuild).
            let fresh = catalog.index(NAME).expect("still registered");
            let merge_edge = queries
                .iter()
                .zip(&answers)
                .find(|&(&(u, v), &a)| a && u != v && !fresh.reaches(v, u))
                .map(|(&(u, v), _)| (v, u));
            if let Some((u, v)) = merge_edge {
                let mut merge = Delta::new();
                merge.insert(u, v);
                println!("\ndelta 3: back edge ({u}, {v}) closing a cycle");
                let report = catalog.apply_delta(NAME, &merge).expect("valid delta");
                print_delta_report(&report);
            }

            // Delta 4: delete the edge delta 2 spliced in — its
            // condensation arc loses its only direct support, so the
            // planner unsplices the arc in place instead of rebuilding.
            // (Skipped if delta 3's merge swallowed both endpoints into
            // one component — the deletion would be intra-SCC instead.)
            let fresh = catalog.index(NAME).expect("still registered");
            if let Some((u, v)) = splice_edge.filter(|&(u, v)| fresh.comp(u) != fresh.comp(v)) {
                let mut unsplice = Delta::new();
                unsplice.delete(u, v);
                println!(
                    "\ndelta 4: deleting the spliced edge ({u}, {v}) — its arc's last support"
                );
                let report = catalog.apply_delta(NAME, &unsplice).expect("valid delta");
                print_delta_report(&report);
            }

            // Delta 5: delete an intra-SCC edge of a small component —
            // the SCC split check re-runs SCC on just that component's
            // members (and keeps the index when it holds together).
            let fresh = catalog.index(NAME).expect("still registered");
            let graph = catalog.graph(NAME).expect("still registered");
            let intra = graph.out_csr().edges().find(|&(u, v)| {
                u != v
                    && fresh.comp(u) == fresh.comp(v)
                    && (2..=64).contains(&fresh.component_size(fresh.comp(u)))
            });
            if let Some((u, v)) = intra {
                let mut split = Delta::new();
                split.delete(u, v);
                println!(
                    "\ndelta 5: deleting intra-SCC edge ({u}, {v}) of a {}-vertex component",
                    fresh.component_size(fresh.comp(u))
                );
                let report = catalog.apply_delta(NAME, &split).expect("valid delta");
                print_delta_report(&report);
            }
        }
    }
    print_repair_counts(&catalog);
    dump_metrics(metrics, "updates");

    // ---- Serve the same batch against the updated graph ----
    let index = catalog.index(NAME).expect("still registered");
    let s = index.stats();
    println!(
        "\nafter updates: built_by {:?}  (lineage: {} splices, {} region recomputes, \
         {} unsplices, {} scc splits, {:.1}ms total repair time; support table: \
         {} arc pairs, {} latent)",
        s.built_by,
        s.dag_splices,
        s.region_recomputes,
        s.arc_unsplices,
        s.scc_splits,
        s.repair_seconds * 1e3,
        s.supported_pairs,
        s.latent_arcs,
    );
    let answers = serve_batch(&catalog, &queries);
    spot_check(&catalog, &queries, &answers);
    dump_metrics(metrics, "final batch");

    // ---- EXPLAIN demo: provenance per query, decision per repair ----
    explain_demo(&catalog, &queries);
    if let Some(dir) = &flight_dir {
        println!(
            "\nflight journal written — `pscc-doctor {}` reconstructs this run's timeline",
            dir.display()
        );
    }

    // ---- Persistence epilogue: save answers, explain the restart ----
    if let Some(dir) = &data_dir {
        let (wal, snap) = catalog.store_bytes(NAME).expect("durable");
        println!("\ndurable state: wal {wal} B, snapshot {snap} B (every delta fsynced)");
        save_answers(dir, &answers);
        println!(
            "answers saved — rerun with `--data-dir {}` (after killing this \
             process at any point) to recover and verify",
            dir.display()
        );
    }
}

/// The restart path: recover the catalog from disk, serve the same batch,
/// and verify the answers match the pre-restart run byte for byte.
fn recover_and_verify(dir: &Path, updates_path: Option<&str>, metrics: bool) {
    let t = Instant::now();
    let catalog = Catalog::open(dir).expect("recoverable data dir");
    println!(
        "recovered catalog {:?} from {} in {:.1}ms",
        catalog.names(),
        dir.display(),
        t.elapsed().as_secs_f64() * 1e3,
    );
    let g = catalog.graph(NAME).expect("recovered graph");
    let generation = catalog.generation(NAME).expect("recovered graph");
    println!("graph: n={} m={}  (generation {generation}, index rebuilds lazily)\n", g.n(), g.m());

    let queries = query_batch(g.n());
    let answers = serve_batch(&catalog, &queries);
    spot_check(&catalog, &queries, &answers);

    match load_answers(dir) {
        Some(saved) => {
            assert_eq!(
                answers, saved,
                "restarted catalog must answer the batch identically to the run that saved it"
            );
            println!(
                "verified: {} recovered answers identical to the pre-restart run",
                saved.len()
            );
        }
        None => println!("no saved answers to verify against (first run saved none)"),
    }

    if let Some(path) = updates_path {
        let delta = read_update_commands(path).expect("readable update file");
        println!("\napplying {path} durably: {} operations", delta.len());
        let report = catalog.apply_delta(NAME, &delta).expect("valid delta");
        print_delta_report(&report);
        print_repair_counts(&catalog);
        let answers = serve_batch(&catalog, &queries);
        spot_check(&catalog, &queries, &answers);
        save_answers(dir, &answers);
    }
    explain_demo(&catalog, &queries);
    dump_metrics(metrics, "recovery");
}

/// The EXPLAIN demo: re-answer a slice of the batch *with provenance* —
/// which tier (memo, bitset row, label intersection, interval
/// refutation, pruned DFS, …) produced each verdict — then print the
/// last repair plan's full decision trace: the chosen tier and every
/// cheaper tier the planner rejected, with the reason. On a label-tier
/// index a few `label_intersect` verdicts are sampled explicitly.
fn explain_demo(catalog: &Catalog, queries: &[(V, V)]) {
    let sample = &queries[..queries.len().min(2_000)];
    let t = Instant::now();
    let explained = catalog.answer_batch_explained(NAME, sample).expect("graph registered");
    let secs = t.elapsed().as_secs_f64();
    let mut tiers: Vec<(&'static str, usize)> = Vec::new();
    for e in &explained {
        let name = e.tier.name();
        match tiers.iter_mut().find(|(t, _)| *t == name) {
            Some((_, n)) => *n += 1,
            None => tiers.push((name, 1)),
        }
    }
    tiers.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let mix = tiers.iter().map(|(t, n)| format!("{t}: {n}")).collect::<Vec<_>>().join(", ");
    println!("\n==== EXPLAIN ====");
    println!(
        "{} queries re-answered with provenance in {:.2}ms  ({mix})",
        sample.len(),
        secs * 1e3
    );
    for e in explained.iter().take(5) {
        println!("  {}", e.describe());
    }
    let label_samples: Vec<_> =
        explained.iter().filter(|e| e.tier == QueryTier::LabelIntersect).take(3).collect();
    if !label_samples.is_empty() {
        println!("label-tier samples (one sorted-hub intersection per verdict):");
        for e in label_samples {
            println!("  {}  [{} merge steps]", e.describe(), e.dfs_visited);
        }
    }
    match catalog.last_plan_explain(NAME) {
        Some(plan) => {
            println!("last repair plan:");
            for line in plan.describe().lines() {
                println!("  {line}");
            }
        }
        None => println!("no repair planned yet (no delta has reached a live index)"),
    }
}

/// With `--metrics`, dumps the whole registry as Prometheus-style text
/// exposition (recovery replay and WAL-fsync histograms included).
fn dump_metrics(enabled: bool, phase: &str) {
    if !enabled {
        return;
    }
    println!("\n==== telemetry after {phase} ====");
    print!("{}", parallel_scc::telemetry::render_text());
    println!("====");
}

/// Prints the per-tier repair tallies of the served graph.
fn print_repair_counts(catalog: &Catalog) {
    if let Some(c) = catalog.repair_counts(NAME) {
        println!(
            "\nrepair tiers: {} absorbed, {} dag-spliced, {} region-recomputed, \
             {} arc-unspliced, {} scc-split, {} full rebuilds",
            c.absorbed,
            c.dag_spliced,
            c.region_recomputed,
            c.arc_unspliced,
            c.scc_split,
            c.full_rebuilds
        );
    }
}

/// The deterministic 10k-query batch every run serves (a pure function of
/// the vertex count, so pre- and post-restart runs agree).
fn query_batch(n: usize) -> Vec<(V, V)> {
    let mut rng = pscc_runtime::SplitMix64::new(0xba7c);
    (0..10_000).map(|_| (rng.next_below(n as u64) as V, rng.next_below(n as u64) as V)).collect()
}

const ANSWERS_MAGIC: &[u8; 8] = b"PSCCANS1";

/// Saves batch answers next to the store (magic + count + one byte each).
fn save_answers(dir: &Path, answers: &[bool]) {
    let mut bytes = Vec::with_capacity(16 + answers.len());
    bytes.extend_from_slice(ANSWERS_MAGIC);
    bytes.extend_from_slice(&(answers.len() as u64).to_le_bytes());
    bytes.extend(answers.iter().map(|&b| b as u8));
    std::fs::write(dir.join("answers.bin"), bytes).expect("write answers");
}

/// Loads previously saved batch answers, if any.
fn load_answers(dir: &Path) -> Option<Vec<bool>> {
    let bytes = std::fs::read(dir.join("answers.bin")).ok()?;
    let (magic, rest) = bytes.split_at_checked(8)?;
    if magic != ANSWERS_MAGIC {
        return None;
    }
    let (count, body) = rest.split_at_checked(8)?;
    let count = u64::from_le_bytes(count.try_into().ok()?) as usize;
    if body.len() != count {
        return None;
    }
    Some(body.iter().map(|&b| b != 0).collect())
}

fn serve_batch(catalog: &Catalog, queries: &[(V, V)]) -> Vec<bool> {
    let t = Instant::now();
    let answers = catalog.answer_batch(NAME, queries).expect("graph registered");
    let secs = t.elapsed().as_secs_f64();
    let reachable = answers.iter().filter(|&&b| b).count();
    println!(
        "batch: {} queries in {:.2}ms  ->  {:.0} queries/sec  ({} reachable)",
        queries.len(),
        secs * 1e3,
        queries.len() as f64 / secs,
        reachable,
    );
    answers
}

fn print_index_report(index: &ReachIndex, build_seconds: f64) {
    let s = index.stats();
    println!("index built in {:.1}ms  (tier {:?})", build_seconds * 1e3, index.tier());
    println!("  scc        {:>8.1}ms", s.scc_seconds * 1e3);
    println!("  condense   {:>8.1}ms", s.condense_seconds * 1e3);
    println!("  levels     {:>8.1}ms", s.levels_seconds * 1e3);
    println!("  summary    {:>8.1}ms", s.summary_seconds * 1e3);
    println!(
        "  components {:>8}  dag arcs {:>8}  summary {:.1} MiB  exceptions {}",
        s.num_components,
        s.dag_arcs,
        s.summary_bytes as f64 / (1 << 20) as f64,
        s.exception_components,
    );
    if index.tier() == SummaryTier::Labels {
        println!(
            "  labels: {} hub entries, mean length {:.2} — a point query is one \
             sorted-hub intersection, no DFS fallback",
            s.label_entries,
            s.mean_label_len(),
        );
    }
    println!();
}

fn print_delta_report(report: &DeltaReport) {
    println!(
        "  outcome {:?}: {} edges inserted, {} deleted",
        report.outcome, report.inserted, report.deleted
    );
}

/// Parses an update-command file: one `+ u v` (insert) or `- u v`
/// (delete) per line; `#` starts a comment.
fn read_update_commands(path: &str) -> std::io::Result<Delta> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut delta = Delta::new();
    for (no, line) in std::fs::read_to_string(path)?.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let op = it.next().expect("non-empty line");
        let mut endpoint = || -> std::io::Result<V> {
            it.next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad(format!("line {}: expected `{op} u v`", no + 1)))
        };
        let (u, v) = (endpoint()?, endpoint()?);
        match op {
            "+" | "add" => delta.insert(u, v),
            "-" | "del" => delta.delete(u, v),
            other => return Err(bad(format!("line {}: unknown op {other:?}", no + 1))),
        };
    }
    Ok(delta)
}

fn spot_check(catalog: &Catalog, queries: &[(V, V)], answers: &[bool]) {
    let g = catalog.graph(NAME).expect("graph registered");
    for (i, &(u, v)) in queries.iter().take(200).enumerate() {
        assert_eq!(answers[i], bfs_reaches(&g, u, v), "query ({u}, {v})");
    }
    println!("spot-checked 200 answers against BFS: all agree");
}

fn bfs_reaches(g: &DiGraph, u: V, v: V) -> bool {
    let mut seen = vec![false; g.n()];
    let mut stack = vec![u];
    seen[u as usize] = true;
    while let Some(x) = stack.pop() {
        if x == v {
            return true;
        }
        for &w in g.out_neighbors(x) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                stack.push(w);
            }
        }
    }
    false
}

//! Road-network analysis with the §8 extensions: weighted shortest paths
//! (relaxation re-queuing) and k-core decomposition (wake-up frontiers) on
//! a large-diameter grid-with-shortcuts graph — the USA/Germany road-graph
//! regime of Tab. 3.
//!
//! Run with: `cargo run --release --example road_network`

use parallel_scc::apps::{core_numbers, dijkstra, parallel_sssp};
use parallel_scc::graph::wcsr::WCsr;
use parallel_scc::prelude::*;
use parallel_scc::runtime::{SplitMix64, Timer};

fn main() {
    // Grid roads with random travel times, plus a few long highways.
    let w = 300usize;
    let h = 300usize;
    let n = w * h;
    let mut rng = SplitMix64::new(7);
    let mut edges: Vec<(V, V, u32)> = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let v = (y * w + x) as V;
            if x + 1 < w {
                edges.push((v, v + 1, 1 + rng.next_below(9) as u32));
            }
            if y + 1 < h {
                edges.push((v, v + w as V, 1 + rng.next_below(9) as u32));
            }
        }
    }
    for _ in 0..200 {
        let a = rng.next_below(n as u64) as V;
        let b = rng.next_below(n as u64) as V;
        if a != b {
            edges.push((a, b, 3)); // highways: long reach, low cost
        }
    }
    let g = WCsr::from_undirected_edges(n, &edges);
    println!("road network: n = {n}, m = {} (weighted, undirected)\n", g.m());

    // Shortest paths from a corner depot.
    let src: V = 0;
    let t = Timer::start();
    let par = parallel_sssp(&g, src);
    let t_par = t.seconds();
    let t = Timer::start();
    let seq = dijkstra(&g, src);
    let t_seq = t.seconds();
    assert_eq!(par.dist, seq, "parallel SSSP must match Dijkstra");
    let reachable = par.dist.iter().filter(|&&d| d != parallel_scc::apps::sssp::INF).count();
    let max_d = par.dist.iter().filter(|&&d| d != parallel_scc::apps::sssp::INF).max().unwrap();
    println!(
        "SSSP: {} vertices reachable, farthest cost {}, {} rounds, {} relaxations",
        reachable, max_d, par.rounds, par.relaxations
    );
    println!(
        "      parallel {:.1} ms vs Dijkstra {:.1} ms (matches exactly ✓)\n",
        t_par * 1e3,
        t_seq * 1e3
    );

    // Structural robustness: the k-core decomposition of the road graph.
    let ug = UnGraph::from_undirected_edges(
        n,
        &edges.iter().map(|&(a, b, _)| (a, b)).collect::<Vec<_>>(),
    );
    let t = Timer::start();
    let core = core_numbers(&ug);
    let t_core = t.seconds();
    let max_core = core.iter().copied().max().unwrap();
    println!("k-core decomposition in {:.1} ms; degeneracy = {max_core}", t_core * 1e3);
    for k in 0..=max_core {
        let cnt = core.iter().filter(|&&c| c == k).count();
        println!("  coreness {k}: {cnt} vertices");
    }
    println!(
        "\n(grid interiors form the {max_core}-core; boundary/degree-deficient \
         vertices peel off earlier — the wake-up frontier processes each peel \
         wave in parallel)"
    );
}

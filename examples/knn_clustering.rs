//! Unsupervised clustering with SCCs on a k-NN graph — the machine-learning
//! use case that motivates the paper's large-diameter graph family
//! (SCC-based clustering à la Shekhar et al., §1).
//!
//! We generate a clustered 2-D point cloud, build its directed k-NN graph,
//! and report how the strongly connected components recover the clusters.
//!
//! Run with: `cargo run --release --example knn_clustering`

use parallel_scc::graph::generators::knn::{clustered_points, knn_digraph};
use parallel_scc::prelude::*;

fn main() {
    let n = 20_000;
    let clusters = 6;
    let k = 5;
    println!("generating {n} points in {clusters} blobs, building exact {k}-NN graph…");
    let points = clustered_points(n, clusters, 42);
    let g = knn_digraph(&points, k);
    println!("k-NN graph: n = {}, m = {}", g.n(), g.m());

    let (result, stats) = parallel_scc_with_stats(&g, &SccConfig::default());
    println!(
        "SCCs: {} components, largest = {} ({:.1}% of points)",
        result.num_sccs,
        result.largest_scc,
        100.0 * result.largest_scc as f64 / n as f64
    );

    // Cluster-size histogram: SCC clustering yields many medium components
    // on k-NN graphs (compare |SCC1|% ≈ 12% for HH5/CH5 in Tab. 2).
    let mut sizes: Vec<usize> = {
        use std::collections::HashMap;
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for &l in &result.labels {
            *counts.entry(l).or_insert(0) += 1;
        }
        counts.into_values().collect()
    };
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!("top-10 SCC sizes: {:?}", &sizes[..sizes.len().min(10)]);
    let big = sizes.iter().filter(|&&s| s >= 50).count();
    println!("components with ≥ 50 points: {big}");

    // The headline effect: VGC needs far fewer rounds than plain BFS on
    // this large-diameter graph.
    let (_, plain) = parallel_scc_with_stats(&g, &SccConfig::plain());
    println!(
        "reachability rounds — VGC: {}, plain BFS: {} ({:.1}x reduction)",
        stats.total_rounds(),
        plain.total_rounds(),
        plain.total_rounds() as f64 / stats.total_rounds() as f64
    );

    let seq = tarjan_scc(&g);
    assert!(parallel_scc::scc::verify::same_partition(&result.labels, &seq));
    println!("verified against Tarjan ✓");
}

//! Quickstart: build a small digraph, compute its SCCs, and inspect the
//! result — plus a first look at the instrumentation the library exposes.
//!
//! Run with: `cargo run --release --example quickstart`

use parallel_scc::prelude::*;
use parallel_scc::scc::verify::partition_groups;

fn main() {
    // The example graph of the paper's Fig. 2 (vertices A..L = 0..11).
    let g = parallel_scc::graph::fixtures::fig2_graph();
    println!("graph: n = {}, m = {}", g.n(), g.m());

    // Compute SCCs with the paper's default configuration
    // (τ = 512, β = 1.5, VGC everywhere, hash bags, dense mode).
    let (result, stats) = parallel_scc_with_stats(&g, &SccConfig::default());

    println!("number of SCCs : {}", result.num_sccs);
    println!("largest SCC    : {} vertices", result.largest_scc);

    let names = parallel_scc::graph::fixtures::FIG2_NAMES;
    for group in partition_groups(&result.labels) {
        let members: String = group.iter().map(|&v| names[v as usize]).collect();
        println!("  SCC {{{members}}}");
    }

    // Instrumentation: phase breakdown (Fig. 9) and per-search rounds
    // (Fig. 10) come back with every run.
    println!(
        "\nbatches: {}, total reachability rounds: {}",
        stats.num_batches,
        stats.total_rounds()
    );
    for (phase, dur) in stats.breakdown.phases() {
        println!("  {:<13} {:>9.3} ms", phase, dur.as_secs_f64() * 1e3);
    }

    // Cross-check against the sequential baselines.
    let seq = tarjan_scc(&g);
    assert!(parallel_scc::scc::verify::same_partition(&result.labels, &seq));
    println!("\nverified against Tarjan ✓");
}

//! Percolation on isotropically directed lattices (De Noronha et al.,
//! Physical Review E 2018) — the material-science application behind the
//! paper's SQR/REC lattice family (§6).
//!
//! Sweeps the arc probability `p` of the tri-state lattice model and
//! reports the giant-SCC fraction: below the percolation threshold the
//! graph shatters into tiny SCCs (the SQR'/REC' regime, |SCC1| ≈ 0%);
//! at `p = 0.5` every adjacency carries an arc and a giant SCC spans the
//! torus (the SQR/REC regime, |SCC1| ≈ 99%).
//!
//! Run with: `cargo run --release --example lattice_percolation`

use parallel_scc::graph::generators::lattice::lattice_tristate;
use parallel_scc::prelude::*;

fn main() {
    let w = 200;
    let h = 200;
    let n = (w * h) as f64;
    println!("{w}x{h} circular lattice, tri-state arc model (paper §6)\n");
    println!("{:>6} {:>10} {:>12} {:>12} {:>10}", "p", "edges", "#SCC", "|SCC1|", "|SCC1|%");

    for &p in &[0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50] {
        let g = lattice_tristate(w, h, p, 7);
        let result = parallel_scc(&g, &SccConfig::default());
        println!(
            "{:>6.2} {:>10} {:>12} {:>12} {:>9.2}%",
            p,
            g.m(),
            result.num_sccs,
            result.largest_scc,
            100.0 * result.largest_scc as f64 / n
        );
    }

    println!(
        "\nThe sharp rise of |SCC1|% with p is the directed percolation \
         transition; SQR'/REC' (p = 0.3) sit below it, SQR/REC (p = 0.5, \
         one arc per adjacency) far above."
    );
}

//! Neighborhood-size estimation with LE-lists (§5.2) — Cohen's classic
//! application: from each vertex's least-element list one can estimate the
//! number of vertices within distance `d` without running n BFSs.
//!
//! The estimator: under a uniform random priority order, the minimum
//! priority rank `r` among the vertices within distance `d` of `v` has
//! expectation ≈ `n / (|ball(v,d)| + 1)`. Averaging the observed minimum
//! rank over several permutations and inverting gives
//! `|ball| ≈ n / r̄ − 1` (Cohen 1997's size-estimation framework).
//!
//! Run with: `cargo run --release --example lelists_estimation`

use parallel_scc::prelude::*;

fn main() {
    // A toroidal grid: balls have predictable sizes ~ 2d(d+1)+1.
    let g = parallel_scc::graph::generators::lattice::lattice_sqr(120, 120, 1).symmetrize();
    let n = g.n();
    println!("torus graph: n = {n}, m = {}\n", g.m());

    // Average the single-permutation estimator over several seeds.
    let seeds = [1u64, 2, 3, 4, 5, 6, 7, 8];
    let mut rank_sums = [0.0f64; 10];
    let probe = 777usize; // vertex whose neighborhood we size up

    for &seed in &seeds {
        let cfg = LeListsConfig { seed, ..LeListsConfig::default() };
        let res = le_lists(&g, &cfg);
        // rank of each vertex in this permutation
        let mut rank = vec![0u32; n];
        for (i, &v) in res.priority.iter().enumerate() {
            rank[v as usize] = i as u32;
        }
        for d in 0..10u32 {
            // minimum priority rank among entries with distance <= d
            let best = res.lists[probe]
                .iter()
                .filter(|&&(_, dist)| dist <= d)
                .map(|&(v, _)| rank[v as usize])
                .min();
            if let Some(r) = best {
                rank_sums[d as usize] += (r as f64 + 1.0) / seeds.len() as f64;
            }
        }
    }

    // Ground truth via one BFS.
    let dg = parallel_scc::graph::DiGraph::from_out_csr(g.csr().clone());
    let (dist, _, _) = parallel_scc::graph::stats::bfs_ecc(&dg, probe as V, false);
    println!("{:>4} {:>12} {:>12} {:>8}", "d", "true |ball|", "estimate", "ratio");
    for d in 0..10u32 {
        let truth = dist.iter().filter(|&&x| x <= d).count();
        let est = n as f64 / rank_sums[d as usize] - 1.0;
        println!("{:>4} {:>12} {:>12.1} {:>8.2}", d, truth, est, est / truth as f64);
    }
    println!(
        "\n(One LE-list per permutation gives a coarse unbiased estimate; \
         the paper's applications average many, exactly as done here.)"
    );
}

//! A 2-SAT solver on top of parallel SCC — the classic demonstration that
//! a fast SCC primitive solves non-graph problems outright
//! (Aspvall–Plass–Tarjan via the implication graph).
//!
//! Generates a large random satisfiable 2-SAT instance (planted model),
//! solves it, and verifies the model; then shows an unsatisfiable core
//! being detected.
//!
//! Run with: `cargo run --release --example twosat_solver`

use parallel_scc::prelude::*;
use parallel_scc::runtime::{SplitMix64, Timer};

fn main() {
    let num_vars = 200_000usize;
    let num_clauses = 600_000usize;

    // Planted instance: fix a hidden assignment, emit clauses it satisfies.
    let mut rng = SplitMix64::new(42);
    let hidden: Vec<bool> = (0..num_vars).map(|_| rng.next_bool(0.5)).collect();
    let mut ts = TwoSat::new(num_vars);
    while ts.num_clauses() < num_clauses {
        let a = rng.next_below(num_vars as u64) as u32;
        let b = rng.next_below(num_vars as u64) as u32;
        let ap = rng.next_bool(0.5);
        let bp = rng.next_bool(0.5);
        // Keep the clause only if the hidden assignment satisfies it.
        if (hidden[a as usize] == ap) || (hidden[b as usize] == bp) {
            ts.add_clause(Lit { var: a, positive: ap }, Lit { var: b, positive: bp });
        }
    }
    println!("planted 2-SAT: {} vars, {} clauses", ts.num_vars(), ts.num_clauses());

    let t = Timer::start();
    let model = ts.solve(&SccConfig::default()).expect("planted instance is satisfiable");
    println!("solved in {:.1} ms", t.seconds() * 1e3);
    assert!(ts.is_satisfied_by(&model));
    let agree = model.iter().zip(&hidden).filter(|(a, b)| a == b).count();
    println!(
        "model verified ✓ (agrees with the planted assignment on {:.1}% of vars — \
         any satisfying model is acceptable)",
        100.0 * agree as f64 / num_vars as f64
    );

    // Now poison it with an unsatisfiable core: x ∧ ¬x.
    let mut bad = ts.clone();
    bad.add_unit(Lit::pos(0));
    bad.add_unit(Lit::neg(0));
    let t = Timer::start();
    assert!(bad.solve(&SccConfig::default()).is_none());
    println!("poisoned instance correctly reported UNSAT in {:.1} ms", t.seconds() * 1e3);
}

//! Graph connectivity with LDD-UF-JTB (§5.1) — the paper's first
//! proof-of-generality for hash bags + VGC.
//!
//! Compares our hash-bag+VGC LDD against the ConnectIt-like edge-revisit
//! baseline on a large-diameter road-style grid, where the LDD round
//! reduction matters most (Tab. 3's road/k-NN rows).
//!
//! Run with: `cargo run --release --example connectivity_components`

use parallel_scc::prelude::*;
use parallel_scc::runtime::Timer;

fn main() {
    // A road-network-like graph: a big grid with a sprinkling of random
    // shortcuts removed (kept sparse and large-diameter).
    let g =
        parallel_scc::graph::generators::lattice::lattice_tristate(400, 400, 0.35, 3).symmetrize();
    println!("road-style graph: n = {}, m = {} (symmetrized)\n", g.n(), g.m());

    let run = |mode: LddMode| {
        let cfg = CcConfig { ldd: LddConfig { mode, ..LddConfig::default() } };
        let t = Timer::start();
        let r = connected_components(&g, &cfg);
        (r, t.seconds())
    };

    let (ours, t_ours) = run(LddMode::HashBagVgc);
    let (base, t_base) = run(LddMode::EdgeRevisit);

    println!(
        "{:<22} {:>9.1} ms   LDD rounds = {:<5} components = {}",
        "ours (bag + VGC)",
        t_ours * 1e3,
        ours.ldd_rounds,
        ours.num_components
    );
    println!(
        "{:<22} {:>9.1} ms   LDD rounds = {:<5} components = {}",
        "baseline (revisit)",
        t_base * 1e3,
        base.ldd_rounds,
        base.num_components
    );

    assert!(parallel_scc::scc::verify::same_partition(&ours.labels, &base.labels));
    let seq = parallel_scc::cc::sequential_cc(&g);
    assert!(parallel_scc::scc::verify::same_partition(&ours.labels, &seq));
    println!("\nboth modes agree with sequential BFS connectivity ✓");
    println!(
        "round reduction from VGC: {:.1}x",
        base.ldd_rounds as f64 / ours.ldd_rounds.max(1) as f64
    );
}

//! Community structure on a social-style power-law digraph — the
//! low-diameter regime of the paper's evaluation (LJ/TW columns of Tab. 2).
//!
//! Builds an RMAT graph, finds its SCCs with every implementation in the
//! workspace, and compares their running times and answers — a miniature
//! Tab. 2 row.
//!
//! Run with: `cargo run --release --example social_influence`

use parallel_scc::prelude::*;
use parallel_scc::runtime::Timer;

fn main() {
    let g = parallel_scc::graph::generators::rmat::rmat_digraph(16, 500_000, 1);
    println!("RMAT social graph: n = {}, m = {}\n", g.n(), g.m());

    let time = |name: &str, f: &dyn Fn() -> SccResult| {
        let t = Timer::start();
        let r = f();
        let secs = t.seconds();
        println!(
            "{:<12} {:>8.1} ms   #SCC = {:<8} |SCC1| = {} ({:.1}%)",
            name,
            secs * 1e3,
            r.num_sccs,
            r.largest_scc,
            100.0 * r.largest_scc as f64 / r.labels.len() as f64
        );
        r
    };

    let plain = ReachParams { vgc: false, ..ReachParams::default() };
    let ours = time("ours", &|| parallel_scc(&g, &SccConfig::default()));
    let gbbs = time("gbbs-like", &|| gbbs_scc(&g, &SccConfig::default()).0);
    let ms = time("multi-step", &|| multistep_scc(&g, &plain));
    let fb = time("fw-bw", &|| fwbw_scc(&g, &plain));
    let seq = time("tarjan", &|| {
        let labels = tarjan_scc(&g);
        let (num_sccs, largest_scc) = parallel_scc::scc::verify::component_stats(&labels);
        SccResult { labels: labels.iter().map(|&l| l as u64).collect(), num_sccs, largest_scc }
    });

    for (name, r) in [("gbbs-like", &gbbs), ("multi-step", &ms), ("fw-bw", &fb), ("tarjan", &seq)] {
        assert!(
            parallel_scc::scc::verify::same_partition(&ours.labels, &r.labels),
            "{name} disagrees with ours"
        );
    }
    println!("\nall five algorithms agree on the partition ✓");

    // Influence interpretation: members of the giant SCC can all reach each
    // other — the mutually-reachable influence core of the network.
    println!("influence core: {} of {} accounts are mutually reachable", ours.largest_scc, g.n());
}
